module Token = Appmodel.Token

type block = {
  b_valid : bool;
  b_component : int;
  b_index : int;
  b_quality : int;
  b_values : int array;
}

let block_words = 4 + 64

let pack_block b =
  let words = Array.make block_words 0 in
  words.(0) <- (if b.b_valid then 1 else 0);
  words.(1) <- b.b_component;
  words.(2) <- b.b_index;
  words.(3) <- b.b_quality;
  Array.blit b.b_values 0 words 4 64;
  Token.of_ints words

let unpack_block tok =
  let words = Token.to_ints tok in
  if Array.length words <> block_words then
    invalid_arg "Tokens.unpack_block: wrong token size";
  {
    b_valid = words.(0) <> 0;
    b_component = words.(1);
    b_index = words.(2);
    b_quality = words.(3);
    b_values = Array.sub words 4 64;
  }

let invalid_block ~quality =
  {
    b_valid = false;
    b_component = 0;
    b_index = 0;
    b_quality = quality;
    b_values = Array.make 64 0;
  }

type subheader = {
  s_width : int;
  s_height : int;
  s_quality : int;
  s_mcu_index : int;
  s_frame_index : int;
}

let subheader_words = 5

let pack_subheader s =
  Token.of_ints
    [| s.s_width; s.s_height; s.s_quality; s.s_mcu_index; s.s_frame_index |]

let unpack_subheader tok =
  match Token.to_ints tok with
  | [| s_width; s_height; s_quality; s_mcu_index; s_frame_index |] ->
      { s_width; s_height; s_quality; s_mcu_index; s_frame_index }
  | _ -> invalid_arg "Tokens.unpack_subheader: wrong token size"

let mcu_words = 16 * 16

let pack_mcu pixels =
  if Array.length pixels <> mcu_words then
    invalid_arg "Tokens.pack_mcu: need 256 pixel words";
  Token.of_ints pixels

let unpack_mcu tok =
  let words = Token.to_ints tok in
  if Array.length words <> mcu_words then
    invalid_arg "Tokens.unpack_mcu: wrong token size";
  words

let pack_pixel (r, g, b) = (r lsl 16) lor (g lsl 8) lor b
let unpack_pixel w = ((w lsr 16) land 0xff, (w lsr 8) land 0xff, w land 0xff)

type vld_state = {
  v_bit_position : int;
  v_dc : int array;
  v_mcu_in_frame : int;
  v_frame_index : int;
  v_width : int;
  v_height : int;
  v_quality : int;
}

let vld_state_words = 9

let initial_vld_state =
  {
    v_bit_position = 0;
    v_dc = [| 0; 0; 0 |];
    v_mcu_in_frame = 0;
    v_frame_index = 0;
    v_width = 0;
    v_height = 0;
    v_quality = 0;
  }

let pack_vld_state s =
  Token.of_ints
    [|
      s.v_bit_position;
      s.v_dc.(0) land 0xffff;
      s.v_dc.(1) land 0xffff;
      s.v_dc.(2) land 0xffff;
      s.v_mcu_in_frame;
      s.v_frame_index;
      s.v_width;
      s.v_height;
      s.v_quality;
    |]

let sign16 v = if v >= 0x8000 then v - 0x10000 else v

let unpack_vld_state tok =
  match Token.to_ints tok with
  | [| pos; dc0; dc1; dc2; mcu; frame; width; height; quality |] ->
      {
        v_bit_position = pos;
        v_dc = [| sign16 dc0; sign16 dc1; sign16 dc2 |];
        v_mcu_in_frame = mcu;
        v_frame_index = frame;
        v_width = width;
        v_height = height;
        v_quality = quality;
      }
  | _ -> invalid_arg "Tokens.unpack_vld_state: wrong token size"

type raster_state = {
  r_sum1 : int;
  r_sum2 : int;
  r_pixels : int;
  r_mcus : int;
}

let raster_state_words = 4
let initial_raster_state = { r_sum1 = 1; r_sum2 = 0; r_pixels = 0; r_mcus = 0 }

let pack_raster_state s =
  Token.of_ints [| s.r_sum1; s.r_sum2; s.r_pixels; s.r_mcus |]

let unpack_raster_state tok =
  match Token.to_ints tok with
  | [| r_sum1; r_sum2; r_pixels; r_mcus |] -> { r_sum1; r_sum2; r_pixels; r_mcus }
  | _ -> invalid_arg "Tokens.unpack_raster_state: wrong token size"

let adler_modulus = 65521

let checksum_add state pixels =
  let sum1 = ref state.r_sum1 and sum2 = ref state.r_sum2 in
  Array.iter
    (fun word ->
      sum1 := (!sum1 + word) mod adler_modulus;
      sum2 := (!sum2 + !sum1) mod adler_modulus)
    pixels;
  {
    r_sum1 = !sum1;
    r_sum2 = !sum2;
    r_pixels = state.r_pixels + Array.length pixels;
    r_mcus = state.r_mcus + 1;
  }

(** Constant tables shared by the MJPEG encoder and decoder actors. *)

val block_size : int
(** 8: blocks are 8x8 samples. *)

val block_samples : int
(** 64. *)

val zigzag : int array
(** [zigzag.(i)] is the raster index of the i-th coefficient in zig-zag
    scan order; a permutation of 0..63. *)

val inverse_zigzag : int array
(** [inverse_zigzag.(raster) = zigzag position]. *)

val luminance_quant : int array
(** Base luminance quantization matrix in raster order (64 entries). *)

val chrominance_quant : int array

val scale_quant : int array -> quality:int -> int array
(** Scale a base matrix for a quality setting between 1 (coarsest) and 100
    (all ones, near lossless); entries stay in [1, 255].
    @raise Invalid_argument outside [1, 100]. *)

type writer = {
  mutable buffer : Bytes.t;
  mutable bit_length : int;
}

let create_writer () = { buffer = Bytes.make 64 '\000'; bit_length = 0 }

let ensure w bytes_needed =
  if bytes_needed > Bytes.length w.buffer then begin
    let bigger = Bytes.make (2 * bytes_needed) '\000' in
    Bytes.blit w.buffer 0 bigger 0 (Bytes.length w.buffer);
    w.buffer <- bigger
  end

let write_bits w ~value ~bits =
  if bits < 0 || bits > 30 then invalid_arg "Bitio.write_bits: bad bit count";
  if bits < 30 && (value < 0 || value >= 1 lsl bits) then
    invalid_arg
      (Printf.sprintf "Bitio.write_bits: value %d does not fit in %d bits"
         value bits);
  ensure w (((w.bit_length + bits) / 8) + 1);
  for i = bits - 1 downto 0 do
    let bit = (value lsr i) land 1 in
    let byte_index = w.bit_length / 8 and bit_index = 7 - (w.bit_length mod 8) in
    let current = Char.code (Bytes.get w.buffer byte_index) in
    Bytes.set w.buffer byte_index
      (Char.chr (current lor (bit lsl bit_index)));
    w.bit_length <- w.bit_length + 1
  done

let writer_bit_length w = w.bit_length

let writer_contents w = Bytes.sub w.buffer 0 ((w.bit_length + 7) / 8)

type reader = {
  data : Bytes.t;
  total_bits : int;
  mutable position : int;
}

let create_reader data =
  { data; total_bits = 8 * Bytes.length data; position = 0 }

let reader_of_writer w =
  { data = writer_contents w; total_bits = w.bit_length; position = 0 }

let read_bit r =
  if r.position >= r.total_bits then raise End_of_file;
  let byte_index = r.position / 8 and bit_index = 7 - (r.position mod 8) in
  r.position <- r.position + 1;
  (Char.code (Bytes.get r.data byte_index) lsr bit_index) land 1

let read_bits r count =
  if count < 0 || count > 30 then invalid_arg "Bitio.read_bits: bad bit count";
  let value = ref 0 in
  for _ = 1 to count do
    value := (!value lsl 1) lor read_bit r
  done;
  !value

let bit_position r = r.position

let seek r position =
  if position < 0 || position > r.total_bits then
    invalid_arg "Bitio.seek: out of range";
  r.position <- position

let bits_remaining r = r.total_bits - r.position

(** The inverse-DCT actor (paper Figure 5).

    One firing transforms one dequantized coefficient block into spatial
    samples (still level-shifted; the colour conversion adds the 128
    offset). The generated C runs the full fixed-point transform on every
    block — padding blocks included — so the cost is data independent. *)

val process : Tokens.block -> Tokens.block

val cycles_model : int
val wcet : int

val implementation : Appmodel.Actor_impl.t

val ip_implementation : Appmodel.Actor_impl.t
(** The same actor as a dedicated hardware block (processor type
    ["idct_core"], paper Figure 3's Tile 4): functionally identical,
    pipelined at a few cycles per sample. Used to build heterogeneous
    platforms — the application model "can specify multiple
    implementations for each actor" (§3). *)

(** Token layouts exchanged by the MJPEG actors.

    Every token is an array of 32-bit words (see {!Appmodel.Token}); these
    functions are the single definition of the field layouts, shared by
    the actors and the tests. *)

(** One 8x8 coefficient/sample block travelling VLD -> IQZZ -> IDCT -> CC.
    Invalid blocks pad the fixed rate of 10 blocks per MCU. *)
type block = {
  b_valid : bool;
  b_component : int;  (** 0 luma, 1 Cb, 2 Cr *)
  b_index : int;  (** position within the MCU, 0..5 *)
  b_quality : int;  (** quantization quality the frame was coded with *)
  b_values : int array;  (** 64 entries *)
}

val block_words : int
val pack_block : block -> Appmodel.Token.t
val unpack_block : Appmodel.Token.t -> block
val invalid_block : quality:int -> block

(** Frame/MCU bookkeeping forwarded on subHeader1 (to CC) and subHeader2
    (to Raster). *)
type subheader = {
  s_width : int;
  s_height : int;
  s_quality : int;
  s_mcu_index : int;  (** within the frame *)
  s_frame_index : int;
}

val subheader_words : int
val pack_subheader : subheader -> Appmodel.Token.t
val unpack_subheader : Appmodel.Token.t -> subheader

(** 16x16 RGB pixels of one MCU, each packed as [0xRRGGBB], row major. *)
val mcu_words : int
val pack_mcu : int array -> Appmodel.Token.t
val unpack_mcu : Appmodel.Token.t -> int array
val pack_pixel : int * int * int -> int
val unpack_pixel : int -> int * int * int

(** VLD state carried on the [vldState] self-edge. *)
type vld_state = {
  v_bit_position : int;
  v_dc : int array;  (** three predictors: Y, Cb, Cr *)
  v_mcu_in_frame : int;
  v_frame_index : int;
  v_width : int;  (** 0 before the first header was read *)
  v_height : int;
  v_quality : int;
}

val vld_state_words : int
val initial_vld_state : vld_state
val pack_vld_state : vld_state -> Appmodel.Token.t
val unpack_vld_state : Appmodel.Token.t -> vld_state

(** Raster state on the [rasterState] self-edge: an Adler-style checksum
    over all placed pixel words plus progress counters. *)
type raster_state = {
  r_sum1 : int;
  r_sum2 : int;
  r_pixels : int;
  r_mcus : int;
}

val raster_state_words : int
val initial_raster_state : raster_state
val pack_raster_state : raster_state -> Appmodel.Token.t
val unpack_raster_state : Appmodel.Token.t -> raster_state

val checksum_add : raster_state -> int array -> raster_state
(** Fold pixel words into the running checksum. *)

module Actor_impl = Appmodel.Actor_impl
module Metrics = Appmodel.Metrics

(* The flat-block fast path must produce bit-identical samples to the full
   transform (the checksum validation compares against a reference decoder
   that always runs the full IDCT), so it reuses Idct.inverse on the
   DC-only block; only the *cost model* reflects the shortcut the real
   implementation would take. *)
let process (b : Tokens.block) =
  if not b.b_valid then b
  else { b with b_values = Idct.inverse b.b_values }

(* A straightforward fixed-point 2-D transform: two passes of 64
   multiply-accumulate rows. No zero-skipping in the generated C, so the
   cost is data independent — the entire execution-time slack of the case
   study lives in the VLD. *)
let cycles_model = 380 + (2 * 64 * 17)
let wcet = cycles_model

let fire bundle =
  match Actor_impl.find bundle "iqzz2idct" with
  | [| token |] ->
      [ ("idct2cc", [| Tokens.pack_block (process (Tokens.unpack_block token)) |]) ]
  | _ -> failwith "IDCT: expected exactly one block token"

let implementation =
  Actor_impl.make ~name:"idct_microblaze"
    ~metrics:(Metrics.make ~wcet ~instruction_memory:5120 ~data_memory:3072)
    ~explicit_inputs:[ "iqzz2idct" ]
    ~explicit_outputs:[ "idct2cc" ]
    ~cycles:(Actor_impl.constant_cycles cycles_model)
    fire

(* a pipelined hardware core: two samples per cycle plus handshake *)
let ip_cycles = 24 + (64 / 2)

let ip_implementation =
  Actor_impl.make ~name:"idct_ip_core" ~processor_type:"idct_core"
    ~metrics:(Metrics.make ~wcet:ip_cycles ~instruction_memory:0 ~data_memory:0)
    ~explicit_inputs:[ "iqzz2idct" ]
    ~explicit_outputs:[ "idct2cc" ]
    ~cycles:(Actor_impl.constant_cycles ip_cycles)
    fire

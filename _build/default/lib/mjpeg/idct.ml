let size = 8
let scale_bits = 13
let one_half = 1 lsl (scale_bits - 1)

(* cosines.(k).(n) = round(2^13 * c(k)/2 * cos((2n+1) k pi / 16)),
   with c(0) = 1/sqrt 2 and c(k) = 1 otherwise. *)
let cosines =
  Array.init size (fun k ->
      Array.init size (fun n ->
          let c = if k = 0 then 1.0 /. sqrt 2.0 else 1.0 in
          let angle =
            float_of_int ((2 * n) + 1) *. float_of_int k *. Float.pi /. 16.0
          in
          int_of_float
            (Float.round
               (float_of_int (1 lsl scale_bits) *. (c /. 2.0) *. cos angle))))

let check block =
  if Array.length block <> size * size then
    invalid_arg "Idct: block must have 64 entries"

(* one forward 1-D pass over the rows of [input], transposing on output so
   that applying the same pass twice yields the full 2-D transform *)
let forward_pass input =
  let output = Array.make (size * size) 0 in
  for row = 0 to size - 1 do
    for k = 0 to size - 1 do
      let acc = ref 0 in
      for n = 0 to size - 1 do
        acc := !acc + (input.((row * size) + n) * cosines.(k).(n))
      done;
      output.((k * size) + row) <- (!acc + one_half) asr scale_bits
    done
  done;
  output

let inverse_pass input =
  let output = Array.make (size * size) 0 in
  for row = 0 to size - 1 do
    for n = 0 to size - 1 do
      let acc = ref 0 in
      for k = 0 to size - 1 do
        acc := !acc + (input.((row * size) + k) * cosines.(k).(n))
      done;
      output.((n * size) + row) <- (!acc + one_half) asr scale_bits
    done
  done;
  output

let forward block =
  check block;
  forward_pass (forward_pass block)

let inverse block =
  check block;
  inverse_pass (inverse_pass block)

let nonzero_count block =
  Array.fold_left (fun acc v -> if v <> 0 then acc + 1 else acc) 0 block

let ac_all_zero block =
  let rec scan i = i >= Array.length block || (block.(i) = 0 && scan (i + 1)) in
  scan 1

type code = { bits : int; length : int }

type tree =
  | Leaf of int
  | Node of tree option * tree option

type t = {
  codes : (int * code) list;
  decode_tree : tree;
  max_length : int;
}

(* Huffman code lengths by pairwise merging of the two lightest subtrees,
   then canonical code assignment in (length, symbol) order. *)
let build weighted =
  if List.length weighted < 2 then
    invalid_arg "Huffman.build: need at least two symbols";
  List.iter
    (fun (s, w) ->
      if s < 0 then invalid_arg "Huffman.build: negative symbol";
      if w <= 0 then invalid_arg "Huffman.build: weights must be positive")
    weighted;
  let symbols = List.map fst weighted in
  if List.length (List.sort_uniq compare symbols) <> List.length symbols then
    invalid_arg "Huffman.build: duplicate symbol";
  (* merge forest: (weight, tie-breaker, symbols-with-depth) *)
  let module Forest = struct
    type entry = { weight : int; order : int; leaves : (int * int) list }
  end in
  let open Forest in
  let counter = ref 0 in
  let fresh () =
    incr counter;
    !counter
  in
  let forest =
    ref
      (List.map
         (fun (s, w) -> { weight = w; order = fresh (); leaves = [ (s, 0) ] })
         weighted)
  in
  let pop_lightest () =
    let lightest =
      List.fold_left
        (fun acc e ->
          match acc with
          | None -> Some e
          | Some best ->
              if
                e.weight < best.weight
                || (e.weight = best.weight && e.order < best.order)
              then Some e
              else acc)
        None !forest
    in
    match lightest with
    | Some e ->
        forest := List.filter (fun x -> x.order <> e.order) !forest;
        e
    | None -> assert false
  in
  while List.length !forest > 1 do
    let a = pop_lightest () in
    let b = pop_lightest () in
    forest :=
      {
        weight = a.weight + b.weight;
        order = fresh ();
        leaves =
          List.map (fun (s, d) -> (s, d + 1)) (a.leaves @ b.leaves);
      }
      :: !forest
  done;
  let lengths =
    match !forest with
    | [ root ] ->
        List.map (fun (s, d) -> (s, Stdlib.max 1 d)) root.leaves
    | _ -> assert false
  in
  (* canonical assignment: sort by (length, symbol) and count upward *)
  let sorted =
    List.sort
      (fun (s1, l1) (s2, l2) -> compare (l1, s1) (l2, s2))
      lengths
  in
  let codes =
    let next = ref 0 and previous_length = ref 0 in
    List.map
      (fun (symbol, length) ->
        next := !next lsl (length - !previous_length);
        previous_length := length;
        let c = { bits = !next; length } in
        incr next;
        (symbol, c))
      sorted
  in
  let max_length =
    List.fold_left (fun acc (_, c) -> Stdlib.max acc c.length) 0 codes
  in
  if max_length > 30 then invalid_arg "Huffman.build: code longer than 30 bits";
  let rec insert tree code_bits length symbol =
    if length = 0 then Leaf symbol
    else begin
      let bit = (code_bits lsr (length - 1)) land 1 in
      let left, right =
        match tree with
        | Node (l, r) -> (l, r)
        | Leaf _ -> assert false (* prefix property violated *)
      in
      let subtree side =
        insert
          (Option.value ~default:(Node (None, None)) side)
          code_bits (length - 1) symbol
      in
      if bit = 0 then Node (Some (subtree left), right)
      else Node (left, Some (subtree right))
    end
  in
  let decode_tree =
    List.fold_left
      (fun tree (symbol, c) ->
        match insert tree c.bits c.length symbol with
        | Node _ as n -> n
        | Leaf _ -> assert false)
      (Node (None, None))
      codes
  in
  { codes; decode_tree; max_length }

let find t symbol =
  match List.assoc_opt symbol t.codes with
  | Some c -> c
  | None -> raise Not_found

let code_length t symbol = (find t symbol).length
let max_code_length t = t.max_length

let encode t writer symbol =
  let c = find t symbol in
  Bitio.write_bits writer ~value:c.bits ~bits:c.length

let decode t reader =
  let rec walk = function
    | Leaf symbol -> symbol
    | Node (left, right) -> (
        let bit = Bitio.read_bit reader in
        match if bit = 0 then left else right with
        | Some subtree -> walk subtree
        | None -> failwith "Huffman.decode: invalid code in stream")
  in
  walk t.decode_tree

(* --- the MJPEG tables --- *)

(* DC difference categories: small differences dominate. *)
let dc_table =
  build (List.init 12 (fun category -> (category, 1 lsl (12 - category))))

(* AC (run, size): end-of-block and short runs of small sizes dominate. *)
let ac_table =
  let symbols = ref [ (0x00, 1 lsl 16); (0xF0, 1 lsl 6) ] in
  for run = 0 to 15 do
    for size = 1 to 10 do
      let weight =
        Stdlib.max 1 ((1 lsl 14) / ((run + 1) * (run + 1) * size))
      in
      symbols := ((run lsl 4) lor size, weight) :: !symbols
    done
  done;
  build !symbols

let magnitude_category value =
  let v = abs value in
  let rec bits n acc = if n = 0 then acc else bits (n lsr 1) (acc + 1) in
  bits v 0

let encode_magnitude writer value =
  let category = magnitude_category value in
  if category > 0 then begin
    let bits_value =
      if value >= 0 then value else value + (1 lsl category) - 1
    in
    Bitio.write_bits writer ~value:bits_value ~bits:category
  end

let decode_magnitude reader ~category =
  if category = 0 then 0
  else begin
    let bits_value = Bitio.read_bits reader category in
    if bits_value >= 1 lsl (category - 1) then bits_value
    else bits_value - (1 lsl category) + 1
  end

module Actor_impl = Appmodel.Actor_impl
module Metrics = Appmodel.Metrics

(* 256 pixel words: load, add into the checksum, store bookkeeping. *)
let cycles_model = 260 + (256 * 4)
let wcet = cycles_model

let implementation =
  let fire bundle =
    let state =
      match Actor_impl.find bundle "rasterState" with
      | [| token |] -> Tokens.unpack_raster_state token
      | _ -> failwith "Raster: expected exactly one state token"
    in
    let pixels =
      match Actor_impl.find bundle "cc2raster" with
      | [| token |] -> Tokens.unpack_mcu token
      | _ -> failwith "Raster: expected exactly one MCU token"
    in
    let _ = Actor_impl.find bundle "subHeader2" in
    let state = Tokens.checksum_add state pixels in
    [ ("rasterState", [| Tokens.pack_raster_state state |]) ]
  in
  Actor_impl.make ~name:"raster_microblaze"
    ~metrics:(Metrics.make ~wcet ~instruction_memory:2560 ~data_memory:2048)
    ~explicit_inputs:[ "cc2raster"; "subHeader2"; "rasterState" ]
    ~explicit_outputs:[ "rasterState" ]
    ~cycles:(Actor_impl.constant_cycles cycles_model)
    fire

let mcu_pixels (frame : Encoder.frame) ~mcu_index =
  let mcus_per_row = frame.width / 16 in
  let mcu_x = mcu_index mod mcus_per_row and mcu_y = mcu_index / mcus_per_row in
  Array.init 256 (fun i ->
      let x = (mcu_x * 16) + (i mod 16) and y = (mcu_y * 16) + (i / 16) in
      let p = (y * frame.width) + x in
      Tokens.pack_pixel (frame.red.(p), frame.green.(p), frame.blue.(p)))

let expected_state frames =
  List.fold_left
    (fun state frame ->
      let count = Encoder.mcus_per_frame frame in
      let rec fold state mcu =
        if mcu >= count then state
        else fold (Tokens.checksum_add state (mcu_pixels frame ~mcu_index:mcu)) (mcu + 1)
      in
      fold state 0)
    Tokens.initial_raster_state frames

(** The rasterization actor (paper Figure 5).

    One firing places one MCU's pixels "at the correct location in the
    output buffer". The output device (the master tile's peripheral) is
    abstracted as a running Adler-style checksum over every placed pixel
    word, carried on the [rasterState] self-edge — enough to verify
    bit-exact output against the reference decoder without shipping
    framebuffers through tokens. *)

val cycles_model : int
val wcet : int

val implementation : Appmodel.Actor_impl.t

val expected_state : Encoder.frame list -> Tokens.raster_state
(** The raster state after decoding the given frames once, computed from
    reference data: fold every frame's MCUs (raster order, pixels row
    major) into the checksum. Golden value for end-to-end tests. *)

val mcu_pixels : Encoder.frame -> mcu_index:int -> int array
(** The 256 packed pixel words of one MCU of a frame. *)

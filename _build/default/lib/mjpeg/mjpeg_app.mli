(** The MJPEG decoder application model (paper Figure 5).

    Builds the five-actor SDF graph — VLD, IQZZ, IDCT, CC, Raster — with
    the paper's rates (the VLD emits the fixed worst case of 10 blocks per
    MCU, CC consumes 10), the [subHeader1]/[subHeader2] forwarding edges
    and the [vldState]/[rasterState] self-edges with one initial token
    each. One graph iteration decodes one MCU, so throughput is measured
    in MCUs per clock cycle. *)

val channel_names : string list
val actor_names : string list

val application :
  stream:Bytes.t ->
  ?throughput_constraint:Sdf.Rational.t ->
  unit ->
  (Appmodel.Application.t, string) result
(** The full application model for a given compressed stream (which the
    VLD decodes cyclically). *)

val heterogeneous_application :
  stream:Bytes.t ->
  ?throughput_constraint:Sdf.Rational.t ->
  unit ->
  (Appmodel.Application.t, string) result
(** Like {!application} but the IDCT carries two implementations — the
    Microblaze software one and the ["idct_core"] hardware block — so the
    binder can exploit a heterogeneous platform (paper §3: "multiple
    implementations for each actor ... allows the tool flow to map the
    actors on a heterogeneous platform"). *)

val calibrated_application :
  stream:Bytes.t ->
  ?calibration_stream:Bytes.t ->
  ?margin_percent:int ->
  ?throughput_constraint:Sdf.Rational.t ->
  unit ->
  (Appmodel.Application.t, string) result
(** The application model with {e measurement-based} WCETs, the paper's
    procedure (§6: "a method based on [4] combined with execution time
    measurement"): decode one full pass of [calibration_stream] (default:
    [stream] itself; the Figure-6 experiments calibrate on the synthetic
    worst-case sequence) functionally, take each actor's largest observed
    cycle count and add [margin_percent] (default 10) safety margin.
    Actors whose structural worst case is lower keep the structural
    value. *)

val graph : stream:Bytes.t -> Sdf.Graph.t
(** Just the timed SDF graph (WCET times), for analyses and examples.
    @raise Invalid_argument if the model fails to build. *)

val wcet_table : unit -> (string * int) list
(** Actor name to WCET in cycles — the metrics table of §3/§6. *)

type frame = {
  width : int;
  height : int;
  red : int array;
  green : int array;
  blue : int array;
}

let frame_magic = 0xA5
let blocks_per_mcu = 6
let mcu_size = 16

let make_frame ~width ~height ~f =
  if width <= 0 || height <= 0 || width mod 16 <> 0 || height mod 16 <> 0 then
    invalid_arg "Encoder.make_frame: dimensions must be positive multiples of 16";
  let red = Array.make (width * height) 0 in
  let green = Array.make (width * height) 0 in
  let blue = Array.make (width * height) 0 in
  for y = 0 to height - 1 do
    for x = 0 to width - 1 do
      let r, g, b = f ~x ~y in
      let clamp v = Stdlib.min 255 (Stdlib.max 0 v) in
      red.((y * width) + x) <- clamp r;
      green.((y * width) + x) <- clamp g;
      blue.((y * width) + x) <- clamp b
    done
  done;
  { width; height; red; green; blue }

let mcus_per_frame frame = frame.width / mcu_size * (frame.height / mcu_size)

let clamp255 v = Stdlib.min 255 (Stdlib.max 0 v)

let rgb_to_ycbcr r g b =
  let y = ((77 * r) + (150 * g) + (29 * b)) asr 8 in
  let cb = 128 + (((-43 * r) - (85 * g) + (128 * b)) asr 8) in
  let cr = 128 + (((128 * r) - (107 * g) - (21 * b)) asr 8) in
  (clamp255 y, clamp255 cb, clamp255 cr)

let ycbcr_to_rgb y cb cr =
  let r = y + ((359 * (cr - 128)) asr 8) in
  let g = y - (((88 * (cb - 128)) + (183 * (cr - 128))) asr 8) in
  let b = y + ((454 * (cb - 128)) asr 8) in
  (clamp255 r, clamp255 g, clamp255 b)

type header = {
  h_width : int;
  h_height : int;
  h_quality : int;
}

let write_header w h =
  Bitio.write_bits w ~value:frame_magic ~bits:8;
  Bitio.write_bits w ~value:h.h_width ~bits:16;
  Bitio.write_bits w ~value:h.h_height ~bits:16;
  Bitio.write_bits w ~value:h.h_quality ~bits:8

let read_header r =
  try
    let magic = Bitio.read_bits r 8 in
    if magic <> frame_magic then
      Error (Printf.sprintf "bad frame magic 0x%02X" magic)
    else begin
      let h_width = Bitio.read_bits r 16 in
      let h_height = Bitio.read_bits r 16 in
      let h_quality = Bitio.read_bits r 8 in
      if h_width mod 16 <> 0 || h_height mod 16 <> 0 || h_width = 0 || h_height = 0
      then Error "bad frame dimensions"
      else if h_quality < 1 || h_quality > 100 then Error "bad quality"
      else Ok { h_width; h_height; h_quality }
    end
  with End_of_file -> Error "truncated header"

(* --- block codec: DC difference + AC run-length over zig-zag order --- *)

let encode_block w ~predictor zz =
  let dc = zz.(0) in
  let diff = dc - predictor in
  let category = Huffman.magnitude_category diff in
  Huffman.encode Huffman.dc_table w category;
  Huffman.encode_magnitude w diff;
  let run = ref 0 in
  for i = 1 to 63 do
    if zz.(i) = 0 then incr run
    else begin
      while !run > 15 do
        Huffman.encode Huffman.ac_table w 0xF0;
        run := !run - 16
      done;
      let size = Huffman.magnitude_category zz.(i) in
      Huffman.encode Huffman.ac_table w ((!run lsl 4) lor size);
      Huffman.encode_magnitude w zz.(i);
      run := 0
    end
  done;
  if !run > 0 then Huffman.encode Huffman.ac_table w 0x00;
  dc

let decode_block r ~predictor =
  let zz = Array.make 64 0 in
  let symbols = ref 0 in
  let category = Huffman.decode Huffman.dc_table r in
  incr symbols;
  let diff = Huffman.decode_magnitude r ~category in
  zz.(0) <- predictor + diff;
  let position = ref 1 in
  let finished = ref (!position > 63) in
  while not !finished do
    let symbol = Huffman.decode Huffman.ac_table r in
    incr symbols;
    if symbol = 0x00 then finished := true
    else if symbol = 0xF0 then begin
      position := !position + 16;
      if !position > 63 then failwith "MJPEG: zero run past block end"
    end
    else begin
      let run = symbol lsr 4 and size = symbol land 0xF in
      position := !position + run;
      if !position > 63 then failwith "MJPEG: coefficient past block end";
      zz.(!position) <- Huffman.decode_magnitude r ~category:size;
      incr position;
      if !position > 63 then finished := true
    end
  done;
  (zz.(0), zz, !symbols)

(* --- frame-level encoding --- *)

(* Extract the 8x8 sample block at (bx, by) from a plane, level shifted. *)
let extract_block plane ~plane_width ~bx ~by =
  Array.init 64 (fun i ->
      let x = (bx * 8) + (i mod 8) and y = (by * 8) + (i / 8) in
      plane.((y * plane_width) + x) - 128)

let quantize quant block =
  Array.mapi
    (fun i v ->
      let q = quant.(i) in
      if v >= 0 then (v + (q / 2)) / q else -(((-v) + (q / 2)) / q))
    block

let to_zigzag raster =
  Array.init 64 (fun zz -> raster.(Dct_data.zigzag.(zz)))

(* Build the three planes of one frame in 4:2:0: full-size luma and
   quarter-size chroma obtained by averaging 2x2 neighbourhoods. *)
let planes_of_frame frame =
  let luma = Array.make (frame.width * frame.height) 0 in
  let cw = frame.width / 2 and ch = frame.height / 2 in
  let cb_sum = Array.make (cw * ch) 0 and cr_sum = Array.make (cw * ch) 0 in
  for y = 0 to frame.height - 1 do
    for x = 0 to frame.width - 1 do
      let i = (y * frame.width) + x in
      let ly, cb, cr = rgb_to_ycbcr frame.red.(i) frame.green.(i) frame.blue.(i) in
      luma.(i) <- ly;
      let ci = ((y / 2) * cw) + (x / 2) in
      cb_sum.(ci) <- cb_sum.(ci) + cb;
      cr_sum.(ci) <- cr_sum.(ci) + cr
    done
  done;
  ( luma,
    Array.map (fun s -> (s + 2) / 4) cb_sum,
    Array.map (fun s -> (s + 2) / 4) cr_sum,
    cw )

let encode_frame w ~quality frame =
  write_header w { h_width = frame.width; h_height = frame.height; h_quality = quality };
  let luma_quant = Dct_data.scale_quant Dct_data.luminance_quant ~quality in
  let chroma_quant = Dct_data.scale_quant Dct_data.chrominance_quant ~quality in
  let luma, cb_plane, cr_plane, chroma_width = planes_of_frame frame in
  let dc = Array.make 3 0 in
  (* predictors: Y, Cb, Cr; reset per frame *)
  for mcu_y = 0 to (frame.height / mcu_size) - 1 do
    for mcu_x = 0 to (frame.width / mcu_size) - 1 do
      (* four luma blocks *)
      List.iter
        (fun (dx, dy) ->
          let block =
            extract_block luma ~plane_width:frame.width
              ~bx:((mcu_x * 2) + dx)
              ~by:((mcu_y * 2) + dy)
          in
          let zz = to_zigzag (quantize luma_quant (Idct.forward block)) in
          dc.(0) <- encode_block w ~predictor:dc.(0) zz)
        [ (0, 0); (1, 0); (0, 1); (1, 1) ];
      (* chroma blocks *)
      List.iteri
        (fun idx plane ->
          let block =
            extract_block plane ~plane_width:chroma_width ~bx:mcu_x ~by:mcu_y
          in
          let zz = to_zigzag (quantize chroma_quant (Idct.forward block)) in
          dc.(1 + idx) <- encode_block w ~predictor:dc.(1 + idx) zz)
        [ cb_plane; cr_plane ]
    done
  done

let encode_sequence ~quality frames =
  let w = Bitio.create_writer () in
  List.iter (encode_frame w ~quality) frames;
  Bitio.writer_contents w

(* --- reference decoder --- *)

let from_zigzag zz =
  let raster = Array.make 64 0 in
  Array.iteri (fun i v -> raster.(Dct_data.zigzag.(i)) <- v) zz;
  raster

let dequantize quant block = Array.mapi (fun i v -> v * quant.(i)) block

let decode_frame r header =
  let width = header.h_width and height = header.h_height in
  let luma_quant =
    Dct_data.scale_quant Dct_data.luminance_quant ~quality:header.h_quality
  in
  let chroma_quant =
    Dct_data.scale_quant Dct_data.chrominance_quant ~quality:header.h_quality
  in
  let luma = Array.make (width * height) 0 in
  let cw = width / 2 and ch = height / 2 in
  let cb_plane = Array.make (cw * ch) 0 and cr_plane = Array.make (cw * ch) 0 in
  let dc = Array.make 3 0 in
  let decode_into plane plane_width bx by quant channel =
    let dc_value, zz, _ = decode_block r ~predictor:dc.(channel) in
    dc.(channel) <- dc_value;
    let samples = Idct.inverse (dequantize quant (from_zigzag zz)) in
    Array.iteri
      (fun i v ->
        let x = (bx * 8) + (i mod 8) and y = (by * 8) + (i / 8) in
        plane.((y * plane_width) + x) <- clamp255 (v + 128))
      samples
  in
  for mcu_y = 0 to (height / mcu_size) - 1 do
    for mcu_x = 0 to (width / mcu_size) - 1 do
      List.iter
        (fun (dx, dy) ->
          decode_into luma width ((mcu_x * 2) + dx) ((mcu_y * 2) + dy)
            luma_quant 0)
        [ (0, 0); (1, 0); (0, 1); (1, 1) ];
      decode_into cb_plane cw mcu_x mcu_y chroma_quant 1;
      decode_into cr_plane cw mcu_x mcu_y chroma_quant 2
    done
  done;
  let red = Array.make (width * height) 0 in
  let green = Array.make (width * height) 0 in
  let blue = Array.make (width * height) 0 in
  for y = 0 to height - 1 do
    for x = 0 to width - 1 do
      let i = (y * width) + x in
      let ci = ((y / 2) * cw) + (x / 2) in
      let r8, g8, b8 = ycbcr_to_rgb luma.(i) cb_plane.(ci) cr_plane.(ci) in
      red.(i) <- r8;
      green.(i) <- g8;
      blue.(i) <- b8
    done
  done;
  { width; height; red; green; blue }

let decode_sequence data =
  let r = Bitio.create_reader data in
  let rec frames acc =
    if Bitio.bits_remaining r < 48 then Ok (List.rev acc)
    else
      match read_header r with
      | Error e -> Error e
      | Ok header -> (
          match decode_frame r header with
          | frame -> frames (frame :: acc)
          | exception Failure msg -> Error msg
          | exception End_of_file -> Error "truncated frame")
  in
  frames []

let max_abs_difference a b =
  if a.width <> b.width || a.height <> b.height then
    invalid_arg "Encoder.max_abs_difference: dimension mismatch";
  let worst = ref 0 in
  Array.iteri
    (fun i _ ->
      worst := Stdlib.max !worst (abs (a.red.(i) - b.red.(i)));
      worst := Stdlib.max !worst (abs (a.green.(i) - b.green.(i)));
      worst := Stdlib.max !worst (abs (a.blue.(i) - b.blue.(i))))
    a.red;
  !worst

type error =
  | Schedule_deadlock of { time : int; fired : int; total : int }
  | Schedule_inconsistent of string

(* A dedicated one-iteration simulator: resources pick among their ready
   actors, unbound actors run self-timed (one firing at a time). We cannot
   reuse Execution here because Execution *follows* a static order while
   this module *invents* one. *)
let list_schedule g ~binding =
  match Repetition.compute g with
  | Repetition.Inconsistent c ->
      Error
        (Schedule_inconsistent
           (Printf.sprintf "channel %S violates the balance equations"
              c.channel_name))
  | Repetition.Disconnected_actor a ->
      Error
        (Schedule_inconsistent
           (Printf.sprintf "actor %S is disconnected" a.actor_name))
  | Repetition.Consistent q ->
      let n = Graph.actor_count g in
      let resource_names = ref [] in
      let resource_index = Hashtbl.create 8 in
      let resource_of = Array.make n (-1) in
      for a = 0 to n - 1 do
        match binding a with
        | None -> ()
        | Some r ->
            let idx =
              match Hashtbl.find_opt resource_index r with
              | Some i -> i
              | None ->
                  let i = Hashtbl.length resource_index in
                  Hashtbl.add resource_index r i;
                  resource_names := r :: !resource_names;
                  i
            in
            resource_of.(a) <- idx
      done;
      let resource_names = Array.of_list (List.rev !resource_names) in
      let resource_count = Array.length resource_names in
      let orders = Array.make resource_count [] in
      let busy = Array.make resource_count false in
      let inflight = Array.make n 0 in
      let due = Array.copy q in
      let tokens = Array.make (Graph.channel_count g) 0 in
      List.iter
        (fun (c : Graph.channel) -> tokens.(c.channel_id) <- c.initial_tokens)
        (Graph.channels g);
      let inputs = Array.make n [] and outputs = Array.make n [] in
      List.iter
        (fun (c : Graph.channel) ->
          inputs.(c.target) <-
            (c.channel_id, c.consumption_rate) :: inputs.(c.target);
          outputs.(c.source) <-
            (c.channel_id, c.production_rate) :: outputs.(c.source))
        (Graph.channels g);
      let ready a =
        List.for_all (fun (ch, rate) -> tokens.(ch) >= rate) inputs.(a)
      in
      let pending : (Graph.actor_id * int) Heap.t = Heap.create () in
      let clock = ref 0 in
      let fired = ref 0 in
      let total = Array.fold_left ( + ) 0 q in
      let start a =
        List.iter (fun (ch, rate) -> tokens.(ch) <- tokens.(ch) - rate) inputs.(a);
        due.(a) <- due.(a) - 1;
        inflight.(a) <- inflight.(a) + 1;
        incr fired;
        let res = resource_of.(a) in
        if res >= 0 then begin
          busy.(res) <- true;
          orders.(res) <- a :: orders.(res)
        end;
        Heap.add pending
          ~key:(!clock + Stdlib.max 0 (Graph.actor g a).execution_time)
          (a, res)
      in
      let complete (a, res) =
        List.iter (fun (ch, rate) -> tokens.(ch) <- tokens.(ch) + rate) outputs.(a);
        inflight.(a) <- inflight.(a) - 1;
        if res >= 0 then busy.(res) <- false
      in
      let rec drain () =
        match Heap.min_key pending with
        | Some t when t = !clock ->
            (match Heap.pop pending with
            | Some (_, firing) -> complete firing
            | None -> ());
            drain ()
        | _ -> ()
      in
      let start_pass () =
        let started = ref 0 in
        for res = 0 to resource_count - 1 do
          if not busy.(res) then begin
            (* highest priority: most firings still due, then lowest id *)
            let best = ref None in
            for a = 0 to n - 1 do
              if resource_of.(a) = res && due.(a) > 0 && ready a then
                match !best with
                | None -> best := Some a
                | Some b -> if due.(a) > due.(b) then best := Some a
            done;
            match !best with
            | Some a ->
                start a;
                incr started
            | None -> ()
          end
        done;
        for a = 0 to n - 1 do
          if resource_of.(a) = -1 && inflight.(a) = 0 && due.(a) > 0 && ready a
          then begin
            start a;
            incr started
          end
        done;
        !started
      in
      let rec fixpoint () =
        drain ();
        let started = start_pass () in
        let more =
          match Heap.min_key pending with Some t -> t = !clock | None -> false
        in
        if started > 0 || more then fixpoint ()
      in
      let rec run () =
        fixpoint ();
        if !fired >= total then Ok ()
        else
          match Heap.min_key pending with
          | None -> Error (Schedule_deadlock { time = !clock; fired = !fired; total })
          | Some t ->
              clock := t;
              run ()
      in
      Result.map
        (fun () ->
          Array.to_list
            (Array.mapi
               (fun i name ->
                 {
                   Execution.resource_name = name;
                   static_order = Array.of_list (List.rev orders.(i));
                 })
               resource_names)
          |> List.filter (fun (b : Execution.resource_binding) ->
                 Array.length b.static_order > 0))
        (run ())

let validate g bindings =
  match Repetition.compute g with
  | Repetition.Consistent q ->
      let counts = Array.make (Graph.actor_count g) 0 in
      List.iter
        (fun (b : Execution.resource_binding) ->
          Array.iter (fun a -> counts.(a) <- counts.(a) + 1) b.static_order)
        bindings;
      let bad = ref None in
      Array.iteri
        (fun a c ->
          if c > 0 && c <> q.(a) && !bad = None then
            bad :=
              Some
                (Printf.sprintf
                   "actor %S appears %d times, repetition count is %d"
                   (Graph.actor g a).actor_name c q.(a)))
        counts;
      (match !bad with Some msg -> Error msg | None -> Ok ())
  | Repetition.Inconsistent _ | Repetition.Disconnected_actor _ ->
      Error "graph is not consistent"

let total_entries bindings =
  List.fold_left
    (fun acc (b : Execution.resource_binding) ->
      acc + Array.length b.static_order)
    0 bindings

let pp ppf bindings =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (b : Execution.resource_binding) ->
      Format.fprintf ppf "%s: [%s]@,"
        b.resource_name
        (String.concat " "
           (Array.to_list (Array.map string_of_int b.static_order))))
    bindings;
  Format.fprintf ppf "@]"

(** Imperative binary min-heap keyed by integers.

    Shared by the self-timed SDF execution engine and (via the [sim]
    library) the platform simulator's event queue. Entries with equal keys
    are returned in insertion order, which keeps timed executions
    deterministic. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int
val add : 'a t -> key:int -> 'a -> unit

val min_key : 'a t -> int option
(** Key of the smallest entry without removing it. *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the entry with the smallest key (ties: first added). *)

val clear : 'a t -> unit

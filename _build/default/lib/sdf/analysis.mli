(** Structural and behavioural checks used to admit a graph into the flow.

    The design flow only accepts applications that are consistent (see
    {!Repetition}), weakly connected, and deadlock-free; this module bundles
    those checks and a few graph-theoretic helpers the mapping stage reuses. *)

val is_weakly_connected : Graph.t -> bool
(** Every actor reachable from every other ignoring edge direction.
    The empty graph and singleton graphs are connected. *)

val strongly_connected_components : Graph.t -> Graph.actor_id list list
(** Tarjan's algorithm; components in reverse topological order. *)

val is_strongly_connected : Graph.t -> bool

val topological_order : Graph.t -> Graph.actor_id list option
(** [Some order] when the graph is acyclic {e ignoring channels with initial
    tokens} (tokens break the dependency for the first firing); [None] when
    a token-free cycle exists, which always deadlocks. *)

val is_deadlock_free : ?options:Execution.options -> Graph.t -> bool
(** One full graph iteration executes to completion. *)

type admission_error =
  | Not_consistent of string
  | Not_connected
  | Deadlocks

val admit : Graph.t -> (int array, admission_error) result
(** Full admission check for the design flow; returns the repetition vector
    on success. *)

val pp_admission_error : Format.formatter -> admission_error -> unit

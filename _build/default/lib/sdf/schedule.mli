(** Static-order schedule construction.

    The MAMPS platform runs the actors bound to one processing element in a
    fixed cyclic order — the scheduler degenerates to a lookup table
    (paper, §6.3). This module builds such an order with a list scheduler:
    it simulates one self-timed graph iteration in which every resource, when
    idle, starts the highest-priority ready actor bound to it; the realised
    firing sequence becomes the static order.

    The resulting orders feed {!Execution.options.resources}, so the
    throughput analysis of the mapped graph sees exactly the sequencing the
    generated platform will impose. *)

type error =
  | Schedule_deadlock of { time : int; fired : int; total : int }
      (** the list scheduler got stuck before completing one iteration *)
  | Schedule_inconsistent of string

val list_schedule :
  Graph.t ->
  binding:(Graph.actor_id -> string option) ->
  (Execution.resource_binding list, error) result
(** [list_schedule g ~binding] assigns each actor with [binding a = Some r]
    to resource [r]; actors mapped to [None] (e.g. interconnect model
    actors) stay self-timed. Resources appear in first-use order. Priority
    among ready actors on one resource: most firings still due this
    iteration, then lowest actor id. *)

val validate :
  Graph.t -> Execution.resource_binding list -> (unit, string) result
(** Every bound actor appears in its order exactly its repetition count. *)

val total_entries : Execution.resource_binding list -> int

val pp : Format.formatter -> Execution.resource_binding list -> unit

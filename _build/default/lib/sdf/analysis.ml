let is_weakly_connected g =
  let n = Graph.actor_count g in
  if n <= 1 then true
  else begin
    let adjacency = Array.make n [] in
    List.iter
      (fun (c : Graph.channel) ->
        adjacency.(c.source) <- c.target :: adjacency.(c.source);
        adjacency.(c.target) <- c.source :: adjacency.(c.target))
      (Graph.channels g);
    let seen = Array.make n false in
    let rec visit a =
      if not seen.(a) then begin
        seen.(a) <- true;
        List.iter visit adjacency.(a)
      end
    in
    visit 0;
    Array.for_all Fun.id seen
  end

let strongly_connected_components g =
  let n = Graph.actor_count g in
  let successors = Array.make n [] in
  List.iter
    (fun (c : Graph.channel) ->
      if c.source <> c.target then
        successors.(c.source) <- c.target :: successors.(c.source))
    (Graph.channels g);
  (* Tarjan, with an explicit stack of active vertices. *)
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let next_index = ref 0 in
  let components = ref [] in
  let rec strong_connect v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) = -1 then begin
          strong_connect w;
          lowlink.(v) <- Stdlib.min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then
          lowlink.(v) <- Stdlib.min lowlink.(v) index.(w))
      successors.(v);
    if lowlink.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            if w = v then w :: acc else pop (w :: acc)
      in
      components := pop [] :: !components
    end
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then strong_connect v
  done;
  !components

let is_strongly_connected g =
  match strongly_connected_components g with
  | [] -> true
  | [ _ ] -> true
  | _ :: _ :: _ -> false

let topological_order g =
  let n = Graph.actor_count g in
  let in_degree = Array.make n 0 in
  let successors = Array.make n [] in
  List.iter
    (fun (c : Graph.channel) ->
      (* A channel with initial tokens does not constrain the first firing. *)
      if c.initial_tokens < c.consumption_rate && c.source <> c.target then begin
        in_degree.(c.target) <- in_degree.(c.target) + 1;
        successors.(c.source) <- c.target :: successors.(c.source)
      end)
    (Graph.channels g);
  let queue = Queue.create () in
  for a = 0 to n - 1 do
    if in_degree.(a) = 0 then Queue.add a queue
  done;
  let order = ref [] in
  let visited = ref 0 in
  while not (Queue.is_empty queue) do
    let a = Queue.pop queue in
    order := a :: !order;
    incr visited;
    List.iter
      (fun b ->
        in_degree.(b) <- in_degree.(b) - 1;
        if in_degree.(b) = 0 then Queue.add b queue)
      successors.(a)
  done;
  if !visited = n then Some (List.rev !order) else None

let is_deadlock_free ?options g = Execution.deadlock_free ?options g

type admission_error =
  | Not_consistent of string
  | Not_connected
  | Deadlocks

let admit g =
  match Repetition.compute g with
  | Repetition.Inconsistent c ->
      Error
        (Not_consistent
           (Printf.sprintf "balance equation violated on channel %S"
              c.channel_name))
  | Repetition.Disconnected_actor a ->
      Error
        (Not_consistent
           (Printf.sprintf "actor %S has no channels" a.actor_name))
  | Repetition.Consistent q ->
      if not (is_weakly_connected g) then Error Not_connected
      else if not (is_deadlock_free g) then Error Deadlocks
      else Ok q

let pp_admission_error ppf = function
  | Not_consistent msg -> Format.fprintf ppf "graph is not consistent: %s" msg
  | Not_connected -> Format.fprintf ppf "graph is not connected"
  | Deadlocks -> Format.fprintf ppf "graph deadlocks"

type result =
  | Consistent of int array
  | Inconsistent of Graph.channel
  | Disconnected_actor of Graph.actor

(* Assign actor 0 of each connected component the rate 1 and propagate
   rationals along channels; a conflicting assignment is a witness of
   inconsistency. Finally scale all rates to the smallest integers. *)
let compute g =
  let n = Graph.actor_count g in
  if n = 0 then Consistent [||]
  else begin
    let rate : Rational.t option array = Array.make n None in
    let adjacency = Array.make n [] in
    List.iter
      (fun (c : Graph.channel) ->
        adjacency.(c.source) <- c :: adjacency.(c.source);
        if c.target <> c.source then
          adjacency.(c.target) <- c :: adjacency.(c.target))
      (Graph.channels g);
    let conflict = ref None in
    (* Breadth-first propagation from [root]. *)
    let propagate root =
      rate.(root) <- Some Rational.one;
      let queue = Queue.create () in
      Queue.add root queue;
      while (not (Queue.is_empty queue)) && !conflict = None do
        let a = Queue.pop queue in
        let ra = Option.get rate.(a) in
        let visit (c : Graph.channel) =
          (* rate(src) * prod = rate(dst) * cons *)
          let other, expected =
            if c.source = a then
              ( c.target,
                Rational.div
                  (Rational.mul ra (Rational.of_int c.production_rate))
                  (Rational.of_int c.consumption_rate) )
            else
              ( c.source,
                Rational.div
                  (Rational.mul ra (Rational.of_int c.consumption_rate))
                  (Rational.of_int c.production_rate) )
          in
          match rate.(other) with
          | None ->
              rate.(other) <- Some expected;
              Queue.add other queue
          | Some r ->
              if not (Rational.equal r expected) then conflict := Some c
        in
        List.iter visit adjacency.(a)
      done
    in
    let disconnected = ref None in
    for a = 0 to n - 1 do
      if rate.(a) = None && !conflict = None then begin
        if adjacency.(a) = [] && n > 1 then begin
          if !disconnected = None then disconnected := Some (Graph.actor g a);
          rate.(a) <- Some Rational.one
        end
        else propagate a
      end
    done;
    match (!conflict, !disconnected) with
    | Some c, _ -> Inconsistent c
    | None, Some a -> Disconnected_actor a
    | None, None ->
        let rates = Array.map Option.get rate in
        let denominator_lcm =
          Array.fold_left
            (fun acc (r : Rational.t) -> Rational.lcm_int acc r.den)
            1 rates
        in
        let scaled =
          Array.map
            (fun (r : Rational.t) -> r.num * (denominator_lcm / r.den))
            rates
        in
        let overall_gcd =
          Array.fold_left (fun acc v -> Rational.gcd_int acc v) 0 scaled
        in
        Consistent (Array.map (fun v -> v / overall_gcd) scaled)
  end

let vector_exn g =
  match compute g with
  | Consistent q -> q
  | Inconsistent c ->
      invalid_arg
        (Printf.sprintf
           "Repetition.vector_exn: graph %S is inconsistent (channel %S)"
           (Graph.name g) c.channel_name)
  | Disconnected_actor a ->
      invalid_arg
        (Printf.sprintf
           "Repetition.vector_exn: graph %S has disconnected actor %S"
           (Graph.name g) a.actor_name)

let is_consistent g =
  match compute g with Consistent _ -> true | _ -> false

let iteration_firings g = Array.fold_left ( + ) 0 (vector_exn g)

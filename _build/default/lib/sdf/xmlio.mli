(** SDF graph persistence in the flow's common XML format.

    The format follows the structure of SDF3's [sdf.xsd] closely enough to
    be familiar, but is the flow's own schema:

    {v
    <sdfgraph name="...">
      <actor name="..." executionTime="..."/>
      <channel name="..." src="A" dst="B" prodRate="2" consRate="1"
               initialTokens="1" tokenSize="4"/>
    </sdfgraph>
    v} *)

val to_xml : Graph.t -> Xmlkit.Xml.t
val of_xml : Xmlkit.Xml.t -> (Graph.t, string) result
val to_string : Graph.t -> string
val of_string : string -> (Graph.t, string) result
val to_file : Graph.t -> string -> unit
val of_file : string -> (Graph.t, string) result

module Xml = Xmlkit.Xml

let to_xml g =
  let actor_node (a : Graph.actor) =
    Xml.element "actor"
      ~attrs:
        [
          ("name", a.actor_name);
          ("executionTime", string_of_int a.execution_time);
        ]
  in
  let channel_node (c : Graph.channel) =
    Xml.element "channel"
      ~attrs:
        [
          ("name", c.channel_name);
          ("src", (Graph.actor g c.source).actor_name);
          ("dst", (Graph.actor g c.target).actor_name);
          ("prodRate", string_of_int c.production_rate);
          ("consRate", string_of_int c.consumption_rate);
          ("initialTokens", string_of_int c.initial_tokens);
          ("tokenSize", string_of_int c.token_size);
        ]
  in
  Xml.element "sdfgraph"
    ~attrs:[ ("name", Graph.name g) ]
    ~children:
      (List.map actor_node (Graph.actors g)
      @ List.map channel_node (Graph.channels g))

let of_xml node =
  try
    let root = Xml.as_element node in
    if root.tag <> "sdfgraph" then
      failwith (Printf.sprintf "expected <sdfgraph>, found <%s>" root.tag);
    let g = Graph.empty (Xml.attr root "name") in
    let g =
      List.fold_left
        (fun acc e ->
          fst
            (Graph.add_actor acc ~name:(Xml.attr e "name")
               ~execution_time:(Xml.int_attr e "executionTime")))
        g
        (Xml.children_named root "actor")
    in
    let g =
      List.fold_left
        (fun acc e ->
          let actor_id name =
            match Graph.find_actor acc name with
            | Some a -> a.actor_id
            | None ->
                failwith
                  (Printf.sprintf "channel %S references unknown actor %S"
                     (Xml.attr e "name") name)
          in
          fst
            (Graph.add_channel acc ~name:(Xml.attr e "name")
               ~source:(actor_id (Xml.attr e "src"))
               ~production_rate:(Xml.int_attr e "prodRate")
               ~target:(actor_id (Xml.attr e "dst"))
               ~consumption_rate:(Xml.int_attr e "consRate")
               ?initial_tokens:(Xml.int_attr_opt e "initialTokens")
               ?token_size:(Xml.int_attr_opt e "tokenSize")
               ()))
        g
        (Xml.children_named root "channel")
    in
    Ok g
  with
  | Failure msg -> Error msg
  | Invalid_argument msg -> Error msg

let to_string g = Xml.to_string (to_xml g)

let of_string s = Result.bind (Xml.parse s) of_xml

let to_file g path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string g))

let of_file path = Result.bind (Xml.parse_file path) of_xml

(** Consistency analysis and repetition vectors.

    An SDF graph is {e consistent} when the balance equations

    {v q(src) * production_rate = q(dst) * consumption_rate v}

    admit a non-trivial solution [q] for every channel. The smallest
    strictly-positive integer solution is the {e repetition vector}: firing
    every actor [a] exactly [q(a)] times returns every channel to its initial
    token count, which defines one {e graph iteration}. Inconsistent graphs
    either deadlock or need unbounded buffering, so the flow rejects them. *)

type result =
  | Consistent of int array  (** repetition vector indexed by actor id *)
  | Inconsistent of Graph.channel
      (** a witness channel whose balance equation is violated *)
  | Disconnected_actor of Graph.actor
      (** an actor with no channels cannot be rated against the others *)

val compute : Graph.t -> result

val vector_exn : Graph.t -> int array
(** The repetition vector.
    @raise Invalid_argument if the graph is not consistent (with a message
    naming the witness). *)

val is_consistent : Graph.t -> bool

val iteration_firings : Graph.t -> int
(** Total number of firings in one graph iteration (sum of the repetition
    vector). @raise Invalid_argument on inconsistent graphs. *)

let escape s =
  String.concat "" (List.map (function '"' -> "\\\"" | c -> String.make 1 c)
                      (List.init (String.length s) (String.get s)))

let to_string ?(highlight = []) g =
  let b = Buffer.create 1024 in
  Buffer.add_string b (Printf.sprintf "digraph \"%s\" {\n" (escape (Graph.name g)));
  Buffer.add_string b "  rankdir=LR;\n  node [shape=circle];\n";
  List.iter
    (fun (a : Graph.actor) ->
      let style =
        if List.mem a.actor_id highlight then
          ", style=filled, fillcolor=lightgrey"
        else ""
      in
      Buffer.add_string b
        (Printf.sprintf "  a%d [label=\"%s\\n%d\"%s];\n" a.actor_id
           (escape a.actor_name) a.execution_time style))
    (Graph.actors g);
  List.iter
    (fun (c : Graph.channel) ->
      let label =
        if c.initial_tokens > 0 then
          Printf.sprintf ", label=\"%d\"" c.initial_tokens
        else ""
      in
      Buffer.add_string b
        (Printf.sprintf
           "  a%d -> a%d [taillabel=\"%d\", headlabel=\"%d\"%s];\n" c.source
           c.target c.production_rate c.consumption_rate label))
    (Graph.channels g);
  Buffer.add_string b "}\n";
  Buffer.contents b

let to_file ?highlight g path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?highlight g))

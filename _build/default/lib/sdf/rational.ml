type t = { num : int; den : int }

let rec gcd_int a b =
  let a = abs a and b = abs b in
  if b = 0 then a else gcd_int b (a mod b)

let lcm_int a b = if a = 0 || b = 0 then 0 else abs (a / gcd_int a b * b)

let make num den =
  if den = 0 then invalid_arg "Rational.make: zero denominator";
  let s = if den < 0 then -1 else 1 in
  let num = s * num and den = s * den in
  let g = gcd_int num den in
  if g = 0 then { num = 0; den = 1 } else { num = num / g; den = den / g }

let of_int n = { num = n; den = 1 }
let zero = of_int 0
let one = of_int 1
let add a b = make ((a.num * b.den) + (b.num * a.den)) (a.den * b.den)
let sub a b = make ((a.num * b.den) - (b.num * a.den)) (a.den * b.den)
let mul a b = make (a.num * b.num) (a.den * b.den)

let div a b =
  if b.num = 0 then raise Division_by_zero;
  make (a.num * b.den) (a.den * b.num)

let neg a = { a with num = -a.num }

let inv a =
  if a.num = 0 then raise Division_by_zero;
  make a.den a.num

let compare a b = Stdlib.compare (a.num * b.den) (b.num * a.den)
let equal a b = a.num = b.num && a.den = b.den
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b
let sign a = Stdlib.compare a.num 0
let is_integer a = a.den = 1

let to_int_exn a =
  if a.den <> 1 then invalid_arg "Rational.to_int_exn: not an integer";
  a.num

let to_float a = float_of_int a.num /. float_of_int a.den

let to_string a =
  if a.den = 1 then string_of_int a.num
  else Printf.sprintf "%d/%d" a.num a.den

let pp ppf a = Format.pp_print_string ppf (to_string a)

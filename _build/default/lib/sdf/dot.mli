(** Graphviz export of SDF graphs.

    Rates annotate the edge ends, initial token counts are shown as edge
    labels, mirroring the paper's Figures 2 and 5. *)

val to_string : ?highlight:Graph.actor_id list -> Graph.t -> string
(** A complete [digraph] document. [highlight] actors are drawn filled. *)

val to_file : ?highlight:Graph.actor_id list -> Graph.t -> string -> unit

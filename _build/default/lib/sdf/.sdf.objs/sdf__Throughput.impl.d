lib/sdf/throughput.ml: Array Execution Format Hashtbl Rational Repetition

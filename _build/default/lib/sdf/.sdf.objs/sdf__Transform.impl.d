lib/sdf/transform.ml: Graph List

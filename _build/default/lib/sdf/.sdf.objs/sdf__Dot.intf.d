lib/sdf/dot.mli: Graph

lib/sdf/graph.ml: Format Int List Map Option Printf Result String

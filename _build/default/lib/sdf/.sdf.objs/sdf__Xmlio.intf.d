lib/sdf/xmlio.mli: Graph Xmlkit

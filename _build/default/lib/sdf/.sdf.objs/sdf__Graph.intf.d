lib/sdf/graph.mli: Format

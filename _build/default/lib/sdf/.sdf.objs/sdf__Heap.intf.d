lib/sdf/heap.mli:

lib/sdf/schedule.mli: Execution Format Graph

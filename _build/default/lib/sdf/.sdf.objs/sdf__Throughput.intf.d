lib/sdf/throughput.mli: Execution Format Graph Rational

lib/sdf/execution.ml: Array Buffer Graph Heap List Printf Repetition Stdlib

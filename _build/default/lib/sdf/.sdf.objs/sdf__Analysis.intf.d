lib/sdf/analysis.mli: Execution Format Graph

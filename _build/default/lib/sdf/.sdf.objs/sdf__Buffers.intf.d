lib/sdf/buffers.mli: Execution Graph Rational Throughput

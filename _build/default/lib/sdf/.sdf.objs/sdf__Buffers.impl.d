lib/sdf/buffers.ml: Array Execution Graph List Printf Rational Stdlib String Throughput

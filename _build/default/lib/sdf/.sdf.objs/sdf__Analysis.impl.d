lib/sdf/analysis.ml: Array Execution Format Fun Graph List Printf Queue Repetition Stdlib

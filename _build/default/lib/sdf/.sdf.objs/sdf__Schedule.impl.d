lib/sdf/schedule.ml: Array Execution Format Graph Hashtbl Heap List Printf Repetition Result Stdlib String

lib/sdf/execution.mli: Graph

lib/sdf/xmlio.ml: Fun Graph List Printf Result Xmlkit

lib/sdf/repetition.mli: Graph

lib/sdf/heap.ml: Array Stdlib

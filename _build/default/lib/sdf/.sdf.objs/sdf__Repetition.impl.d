lib/sdf/repetition.ml: Array Graph List Option Printf Queue Rational

lib/sdf/dot.ml: Buffer Fun Graph List Printf String

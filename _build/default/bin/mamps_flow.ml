(* Command-line driver for the automated design flow.

   Subcommands:
     graph FILE.xml      analyse an SDF graph in the common input format
     mjpeg               run the full flow on the MJPEG case study and
                         optionally write the generated MAMPS project
     experiments         reproduce the paper's evaluation tables *)

open Cmdliner

(* --- graph ------------------------------------------------------------------ *)

let analyse_graph path dot_output =
  match Sdf.Xmlio.of_file path with
  | Error msg ->
      Printf.eprintf "cannot read %s: %s\n" path msg;
      1
  | Ok g -> (
      Format.printf "%a@.@." Sdf.Graph.pp g;
      (match Sdf.Analysis.admit g with
      | Error e ->
          Format.printf "rejected by the flow: %a@." Sdf.Analysis.pp_admission_error e
      | Ok q ->
          Format.printf "repetition vector:";
          List.iter
            (fun (a : Sdf.Graph.actor) ->
              Format.printf " %s=%d" a.actor_name q.(a.actor_id))
            (Sdf.Graph.actors g);
          Format.printf "@.self-timed: %a@." Sdf.Throughput.pp_result
            (Sdf.Throughput.analyse g));
      match dot_output with
      | None -> 0
      | Some out ->
          Sdf.Dot.to_file g out;
          Printf.printf "wrote %s\n" out;
          0)

let graph_cmd =
  let path =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"SDF graph in the flow's XML format.")
  in
  let dot =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot" ] ~docv:"OUT" ~doc:"Also write a Graphviz rendering.")
  in
  Cmd.v
    (Cmd.info "graph" ~doc:"Analyse an SDF graph file")
    Term.(const analyse_graph $ path $ dot)

(* --- mjpeg ------------------------------------------------------------------- *)

let interconnect_of = function
  | `Fsl -> Arch.Template.Use_fsl Arch.Fsl.default
  | `Noc -> Arch.Template.Use_noc Arch.Noc.default_config

let run_mjpeg interconnect sequence output passes trace_out =
  match Mjpeg.Streams.by_name sequence with
  | None ->
      Printf.eprintf "unknown sequence %S; available: %s\n" sequence
        (String.concat ", "
           (List.map
              (fun s -> s.Mjpeg.Streams.seq_name)
              (Mjpeg.Streams.all ())));
      1
  | Some seq -> (
      let ( let* ) = Result.bind in
      let result =
        let* app = Experiments.calibrated_mjpeg seq in
        let* flow =
          Core.Design_flow.run_auto app ~options:Experiments.flow_options
            (interconnect_of interconnect) ()
        in
        let iterations = passes * Mjpeg.Streams.mcus seq in
        let collector = Sim.Trace.create () in
        let trace =
          Option.map (fun _ -> Sim.Trace.sink collector) trace_out
        in
        let* measured = Core.Design_flow.measure flow ~iterations ?trace () in
        (match trace_out with
        | None -> ()
        | Some path ->
            let oc = open_out path in
            Fun.protect
              ~finally:(fun () -> close_out oc)
              (fun () -> output_string oc (Sim.Trace.to_vcd collector));
            Printf.printf "wrote %d busy intervals to %s\n"
              (Sim.Trace.span_count collector)
              path);
        Ok (flow, measured)
      in
      match result with
      | Error msg ->
          Printf.eprintf "flow failed: %s\n" msg;
          1
      | Ok (flow, measured) ->
          Format.printf "%a@.@." Mapping.Flow_map.pp_summary
            flow.Core.Design_flow.mapping;
          Format.printf "automated steps:@.%a@.@." Core.Design_flow.pp_times
            flow.Core.Design_flow.times;
          (match flow.Core.Design_flow.guarantee with
          | Some g ->
              Format.printf "guaranteed throughput: %s MCU/cycle (%.4f MCU/MHz/s)@."
                (Sdf.Rational.to_string g)
                (Core.Report.mcus_per_mhz_second g)
          | None -> Format.printf "no throughput guarantee@.");
          Format.printf "measured on the platform (%d MCUs): %.4f MCU/MHz/s@."
            measured.Sim.Platform_sim.iterations
            (Core.Report.mcus_per_mhz_second
               (Sim.Platform_sim.steady_throughput measured));
          (match output with
          | None -> ()
          | Some dir ->
              Mamps.Project.write_to flow.Core.Design_flow.project ~dir;
              Format.printf "MAMPS project written to %s (%d files)@." dir
                (List.length flow.Core.Design_flow.project.Mamps.Project.files));
          0)

let mjpeg_cmd =
  let interconnect =
    Arg.(
      value
      & opt (enum [ ("fsl", `Fsl); ("noc", `Noc) ]) `Fsl
      & info [ "interconnect"; "i" ] ~docv:"KIND"
          ~doc:"Interconnect: $(b,fsl) point-to-point or the $(b,noc).")
  in
  let sequence =
    Arg.(
      value
      & opt string "synthetic"
      & info [ "sequence"; "s" ] ~docv:"NAME"
          ~doc:"Test sequence to decode (see the paper's Figure 6).")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "output"; "o" ] ~docv:"DIR"
          ~doc:"Write the generated MAMPS project here.")
  in
  let passes =
    Arg.(
      value
      & opt int 4
      & info [ "passes" ] ~docv:"N"
          ~doc:"Stream passes to simulate when measuring.")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE.vcd"
          ~doc:"Dump the platform execution as a VCD waveform.")
  in
  Cmd.v
    (Cmd.info "mjpeg" ~doc:"Run the full flow on the MJPEG case study")
    Term.(const run_mjpeg $ interconnect $ sequence $ output $ passes $ trace)

(* --- experiments ------------------------------------------------------------------ *)

let run_experiments () =
  let ok = ref 0 in
  (match Experiments.figure6 (Arch.Template.Use_fsl Arch.Fsl.default) () with
  | Error e ->
      Printf.eprintf "figure 6a failed: %s\n" e;
      ok := 1
  | Ok results ->
      Format.printf "Figure 6a (FSL):@.%a@.@." Core.Report.pp_throughput_table
        (List.map (fun r -> r.Experiments.row) results));
  (match Experiments.table1 () with
  | Error e ->
      Printf.eprintf "table 1 failed: %s\n" e;
      ok := 1
  | Ok times ->
      Format.printf "Table 1:@.%a@.@." Core.Report.pp_effort_table times);
  let area = Experiments.noc_area () in
  Format.printf "NoC flow control: +%d%% slices (paper ~12%%)@."
    area.Experiments.overhead_percent;
  !ok

let experiments_cmd =
  Cmd.v
    (Cmd.info "experiments" ~doc:"Reproduce the paper's evaluation tables")
    Term.(const run_experiments $ const ())

let () =
  let doc =
    "An automated flow to map throughput-constrained applications to a MPSoC"
  in
  exit
    (Cmd.eval'
       (Cmd.group
          (Cmd.info "mamps_flow" ~version:"1.0.0" ~doc)
          [ graph_cmd; mjpeg_cmd; experiments_cmd ]))

(* Command-line driver for the automated design flow.

   Subcommands:
     graph FILE.xml      analyse an SDF graph in the common input format
     mjpeg               run the full flow on the MJPEG case study and
                         optionally write the generated MAMPS project
     dse                 sweep tile counts and interconnects and print the
                         guarantee/area Pareto front
     experiments         reproduce the paper's evaluation tables
     conformance         differential conformance suite on seeded random
                         SDF workloads, with shrinking reproducers
     recover             inject a permanent tile/link fault, diagnose the
                         stall, re-map around the dead resource and
                         re-verify the degraded guarantee
     serve               long-running HTTP daemon answering mapping/DSE
                         requests with a bounded queue and a crash journal

   The dse, conformance, profile and recover subcommands take -j N to fan their
   independent work out over N domains (Exec.Pool); -j 1 — the default —
   is sequential and byte-identical to the pre-parallel behaviour.

   Exit codes are uniform across subcommands:
     0  success
     2  error: invalid input, unknown name, or the flow itself failed
     3  partial result: a deadline fired or the run was interrupted
        (SIGINT); whatever was computed has been printed/checkpointed
     4  a check failed: conformance violations, --assert-scaling
        regression, an unsurvived recovery scenario
   (cmdliner keeps 124 for command-line parse errors.) *)

open Cmdliner

let exit_error = 2
let exit_partial = 3
let exit_gate = 4

(* install a SIGINT handler that cancels [token] so budgeted loops wind
   down cleanly (flushing their checkpoints); a second ^C kills the
   process the traditional way *)
let cancel_on_sigint token =
  let fired = ref false in
  try
    Sys.set_signal Sys.sigint
      (Sys.Signal_handle
         (fun _ ->
           if !fired then exit 130
           else begin
             fired := true;
             Exec.Budget.cancel token
           end))
  with Invalid_argument _ | Sys_error _ -> ()

(* shared -j flag: resolved by Exec.Pool.parallelism, so an absent flag
   falls back to MAMPS_JOBS and then to the sequential default of 1 *)
let jobs_term =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the parallel sections. Default 1 \
           (sequential); $(b,0) means one domain per core; when the flag \
           is absent the $(b,MAMPS_JOBS) environment variable is \
           consulted first. Reports are byte-identical for every value.")

let resolve_jobs jobs = Exec.Pool.parallelism ?jobs ~default:1 ()

(* shared --no-memo flag: kill switch for the worst-case-analysis cache.
   Results are byte-identical either way (the cache key covers every
   analysis input), so the flag only trades time for memory — and gives
   CI a way to prove that equivalence. *)
let no_memo_term =
  Arg.(
    value & flag
    & info [ "no-memo" ]
        ~doc:
          "Disable the shared worst-case-analysis cache and recompute \
           every throughput analysis from scratch. The report is \
           byte-identical with or without the cache; the flag only \
           trades time for memory.")

(* shared --analysis flag: worst-case throughput analysis method. Both
   methods return the same exact bound (a conformance oracle and a
   property test pin that), so the flag only trades analysis time. *)
let analysis_term_with ~default =
  let methods =
    [ ("state-space", `State_space); ("mcm", `Mcm); ("auto", `Auto) ]
  in
  let default_name =
    List.find (fun (_, m) -> m = default) methods |> fst
  in
  Arg.(
    value
    & opt (enum methods) default
    & info [ "analysis" ] ~docv:"METHOD"
        ~doc:
          (Printf.sprintf
             "Worst-case throughput analysis method: $(b,state-space) \
              (simulate to a state recurrence), $(b,mcm) (symbolic \
              (max,+): HSDF expansion + maximum cycle mean, falling back \
              to the state space when the expansion does not apply), or \
              $(b,auto) (mcm when applicable). Default $(b,%s). Every \
              method returns the same exact throughput bound; only the \
              reported transient differs (mcm does not model the \
              start-up phase)."
             default_name))

let analysis_term = analysis_term_with ~default:`State_space

(* the DSE inner loop re-analyses the same graphs at many (tile count,
   interconnect) points, which is exactly where the cheaper symbolic
   method pays — so the sweep defaults to auto; --analysis state-space
   remains the escape hatch *)
let analysis_auto_term = analysis_term_with ~default:`Auto

(* --- graph ------------------------------------------------------------------ *)

let analyse_graph path dot_output =
  match Sdf.Xmlio.of_file path with
  | Error msg ->
      Printf.eprintf "cannot read %s: %s\n" path msg;
      exit_error
  | Ok g -> (
      Format.printf "%a@.@." Sdf.Graph.pp g;
      (match Sdf.Analysis.admit g with
      | Error e ->
          Format.printf "rejected by the flow: %a@." Sdf.Analysis.pp_admission_error e
      | Ok q ->
          Format.printf "repetition vector:";
          List.iter
            (fun (a : Sdf.Graph.actor) ->
              Format.printf " %s=%d" a.actor_name q.(a.actor_id))
            (Sdf.Graph.actors g);
          Format.printf "@.self-timed: %a@." Sdf.Throughput.pp_result
            (Sdf.Throughput.analyse g));
      match dot_output with
      | None -> 0
      | Some out ->
          Sdf.Dot.to_file g out;
          Printf.printf "wrote %s\n" out;
          0)

let graph_cmd =
  let path =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"SDF graph in the flow's XML format.")
  in
  let dot =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot" ] ~docv:"OUT" ~doc:"Also write a Graphviz rendering.")
  in
  Cmd.v
    (Cmd.info "graph" ~doc:"Analyse an SDF graph file")
    Term.(const analyse_graph $ path $ dot)

(* --- mjpeg ------------------------------------------------------------------- *)

let interconnect_of = function
  | `Fsl -> Arch.Template.Use_fsl Arch.Fsl.default
  | `Noc -> Arch.Template.Use_noc Arch.Noc.default_config

(* re-run the measured platform under a fault scenario and report the
   throughput degradation against the SDF3 guarantee *)
let report_faulted flow baseline ~iterations spec =
  Format.printf "@.injecting faults: %a@." Sim.Fault.pp_spec spec;
  match Core.Design_flow.measure flow ~iterations ~faults:spec () with
  | Error e -> (
      match Core.Flow_error.deadlock_diagnosis e with
      | Some d ->
          Format.printf "fault scenario stalled the platform:@.%s@."
            (Sim.Diagnosis.report d);
          0
      | None ->
          Printf.eprintf "faulted run failed: %s\n"
            (Core.Flow_error.to_string e);
          exit_error)
  | Ok faulted ->
      let base = Sim.Platform_sim.steady_throughput baseline in
      let under = Sim.Platform_sim.steady_throughput faulted in
      let degradation =
        if Sdf.Rational.sign base > 0 then
          (1.0 -. (Sdf.Rational.to_float under /. Sdf.Rational.to_float base))
          *. 100.0
        else 0.0
      in
      Format.printf
        "measured under faults: %.4f MCU/MHz/s (%.1f%% degradation)@."
        (Core.Report.mcus_per_mhz_second under)
        degradation;
      (match flow.Core.Design_flow.guarantee with
      | Some g ->
          Format.printf "SDF3 guarantee %s under this scenario@."
            (if Sdf.Rational.compare under g >= 0 then "still holds"
             else "VIOLATED")
      | None -> ());
      (match faulted.Sim.Platform_sim.fault_events with
      | [] -> ()
      | events ->
          Format.printf "injected: %s@."
            (String.concat ", "
               (List.map
                  (fun (k, v) -> Printf.sprintf "%s=%d" k v)
                  events)));
      0

let run_mjpeg interconnect sequence output passes trace_out faults seed
    analysis =
  match Mjpeg.Streams.by_name sequence with
  | None ->
      Printf.eprintf "unknown sequence %S; available: %s\n" sequence
        (String.concat ", "
           (List.map
              (fun s -> s.Mjpeg.Streams.seq_name)
              (Mjpeg.Streams.all ())));
      exit_error
  | Some seq -> (
      match Option.map (Sim.Fault.scenario ~seed) faults with
      | Some (Error msg) ->
          Printf.eprintf "%s\navailable fault scenarios:\n" msg;
          List.iter
            (fun (name, doc) -> Printf.eprintf "  %-12s %s\n" name doc)
            (Sim.Fault.scenario_descriptions ());
          exit_error
      | (None | Some (Ok _)) as resolved -> (
          let spec =
            match resolved with Some (Ok s) -> Some s | _ -> None
          in
          let ( let* ) = Result.bind in
          let result =
            let* app = Experiments.calibrated_mjpeg seq in
            let* flow =
              Result.map_error Core.Flow_error.to_string
                (Core.Design_flow.run_auto app
                   ~options:(Experiments.flow_options_with ~analysis ())
                   (interconnect_of interconnect) ())
            in
            let iterations = passes * Mjpeg.Streams.mcus seq in
            let collector = Sim.Trace.create () in
            let trace =
              Option.map (fun _ -> Sim.Trace.sink collector) trace_out
            in
            let* measured =
              Result.map_error Core.Flow_error.to_string
                (Core.Design_flow.measure flow ~iterations ?trace ())
            in
            (match trace_out with
            | None -> ()
            | Some path ->
                let oc = open_out path in
                Fun.protect
                  ~finally:(fun () -> close_out oc)
                  (fun () -> output_string oc (Sim.Trace.to_vcd collector));
                Printf.printf "wrote %d busy intervals to %s\n"
                  (Sim.Trace.span_count collector)
                  path);
            Ok (flow, measured, iterations)
          in
          match result with
          | Error msg ->
              Printf.eprintf "flow failed: %s\n" msg;
              exit_error
          | Ok (flow, measured, iterations) ->
              Format.printf "%a@.@." Mapping.Flow_map.pp_summary
                flow.Core.Design_flow.mapping;
              Format.printf "automated steps:@.%a@.@." Core.Design_flow.pp_times
                flow.Core.Design_flow.times;
              (match flow.Core.Design_flow.guarantee with
              | Some g ->
                  Format.printf
                    "guaranteed throughput: %s MCU/cycle (%.4f MCU/MHz/s)@."
                    (Sdf.Rational.to_string g)
                    (Core.Report.mcus_per_mhz_second g)
              | None -> Format.printf "no throughput guarantee@.");
              Format.printf
                "measured on the platform (%d MCUs): %.4f MCU/MHz/s@."
                measured.Sim.Platform_sim.iterations
                (Core.Report.mcus_per_mhz_second
                   (Sim.Platform_sim.steady_throughput measured));
              (match output with
              | None -> ()
              | Some dir ->
                  Mamps.Project.write_to flow.Core.Design_flow.project ~dir;
                  Format.printf "MAMPS project written to %s (%d files)@." dir
                    (List.length
                       flow.Core.Design_flow.project.Mamps.Project.files));
              (match spec with
              | None -> 0
              | Some spec -> report_faulted flow measured ~iterations spec)))

let mjpeg_cmd =
  let interconnect =
    Arg.(
      value
      & opt (enum [ ("fsl", `Fsl); ("noc", `Noc) ]) `Fsl
      & info [ "interconnect"; "i" ] ~docv:"KIND"
          ~doc:"Interconnect: $(b,fsl) point-to-point or the $(b,noc).")
  in
  let sequence =
    Arg.(
      value
      & opt string "synthetic"
      & info [ "sequence"; "s" ] ~docv:"NAME"
          ~doc:"Test sequence to decode (see the paper's Figure 6).")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "output"; "o" ] ~docv:"DIR"
          ~doc:"Write the generated MAMPS project here.")
  in
  let passes =
    Arg.(
      value
      & opt int 4
      & info [ "passes" ] ~docv:"N"
          ~doc:"Stream passes to simulate when measuring.")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE.vcd"
          ~doc:"Dump the platform execution as a VCD waveform.")
  in
  let faults =
    let doc =
      Printf.sprintf
        "After the clean run, re-measure under a seeded fault scenario and \
         report the degradation against the guarantee. One of: %s."
        (String.concat ", " (Sim.Fault.scenario_names ()))
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "faults" ] ~docv:"SCENARIO" ~doc)
  in
  let seed =
    Arg.(
      value
      & opt int 1
      & info [ "seed" ] ~docv:"N"
          ~doc:"Seed for the fault injection PRNG (runs are deterministic \
                per seed).")
  in
  Cmd.v
    (Cmd.info "mjpeg" ~doc:"Run the full flow on the MJPEG case study")
    Term.(
      const run_mjpeg $ interconnect $ sequence $ output $ passes $ trace
      $ faults $ seed $ analysis_term)

(* --- dse --------------------------------------------------------------------- *)

(* the paper's "very fast design space exploration", as a subcommand: sweep
   (tile count x interconnect) with one flow run per point — fanned out
   over -j domains — and print the guarantee/area Pareto front *)
(* budgeted sweep: print only deterministic tables on stdout — no wall
   times, no resumed counts — so a resumed run's report is byte-identical
   to an uninterrupted one *)
let run_dse_anytime app ~interconnects ~tile_counts ~max_slices ~jobs ~deadline
    ~task_timeout ~retries ~checkpoint ~resume ~analysis =
  let metrics = Obs.Metrics.create () in
  let deadline = Option.map Exec.Budget.after deadline in
  let retry =
    Option.map (fun n -> Exec.Pool.retry ~max_attempts:n ()) retries
  in
  (* first ^C cancels the sweep between chunks — the checkpoint already on
     disk covers everything evaluated so far, so --resume picks up exactly
     where the interrupt landed; a second ^C kills the process outright *)
  let cancel = Exec.Budget.token () in
  cancel_on_sigint cancel;
  match
    Core.Dse.explore_anytime app ?tile_counts ~interconnects
      ~options:(Experiments.flow_options_with ~analysis ())
      ~jobs ?deadline ?task_timeout ?retry ~cancel ?checkpoint ?resume
      ~metrics ()
  with
  | Error msg ->
      Printf.eprintf "dse: %s\n" msg;
      exit_error
  | Ok a ->
      let summaries = a.Core.Dse.a_summaries in
      Format.printf "%a@." Core.Dse.pp_summary_table summaries;
      List.iter
        (fun (tiles, interc, reason) ->
          Printf.printf "infeasible: %d %s tile(s): %s\n" tiles interc reason)
        a.Core.Dse.a_failures;
      Format.printf "@.Pareto front (guarantee vs. slices):@.%a@."
        Core.Dse.pp_summary_table
        (Core.Dse.pareto_summaries summaries);
      (match max_slices with
      | None -> ()
      | Some budget -> (
          let best =
            List.fold_left
              (fun best (s : Core.Dse.summary) ->
                if s.s_slices > budget || s.s_guarantee = None then best
                else
                  match best with
                  | Some (b : Core.Dse.summary)
                    when Sdf.Rational.compare (Option.get b.s_guarantee)
                           (Option.get s.s_guarantee)
                         >= 0 ->
                      best
                  | Some _ | None -> Some s)
              None summaries
          in
          match best with
          | None -> Printf.printf "no feasible point within %d slices\n" budget
          | Some s ->
              Printf.printf "best under %d slices: %s with %d tile(s), %d \
                             slices\n"
                budget s.s_interconnect s.s_tile_count s.s_slices));
      Printf.printf "%d design point(s), %d infeasible\n"
        (List.length summaries)
        (List.length a.Core.Dse.a_failures);
      if a.Core.Dse.a_resumed > 0 then
        Printf.eprintf "resumed %d point(s) from checkpoint\n"
          a.Core.Dse.a_resumed;
      List.iter
        (fun (name, v) ->
          if v > 0 then Printf.eprintf "%s: %d\n" name v)
        (Obs.Metrics.counters metrics);
      (match a.Core.Dse.a_degradation with
      | None -> 0
      | Some d ->
          Format.printf "%a@." Core.Dse.pp_degradation d;
          exit_partial)

(* CI gate (--assert-scaling): run the same sweep sequentially and then on
   the requested pool in one process and require that the parallel-path
   fixes actually pay — the second pass (clamped pool + warm analysis
   cache) must be strictly faster, and its Pareto front byte-identical to
   the sequential one. Exit 4 on a regression so the job fails loudly. *)
let run_dse_assert_scaling app ~interconnects ~tile_counts ~jobs ~analysis =
  if jobs < 2 then begin
    Printf.eprintf "dse: --assert-scaling needs -j 2 or more (got %d)\n" jobs;
    exit_error
  end
  else begin
    let sweep jobs =
      let start = Exec.Clock.now () in
      let points, _failures =
        Core.Dse.explore app ?tile_counts ~interconnects
          ~options:(Experiments.flow_options_with ~analysis ())
          ~jobs ()
      in
      let seconds = Exec.Clock.elapsed_since start in
      (* compare the deterministic rendering: the summary table carries
         no per-point wall times, so equal fronts diff byte-identically *)
      let front =
        Format.asprintf "%a" Core.Dse.pp_summary_table
          (Core.Dse.pareto_summaries (List.map Core.Dse.summarize points))
      in
      (seconds, front)
    in
    let seq_s, seq_front = sweep 1 in
    let par_s, par_front = sweep jobs in
    Printf.printf "sequential (-j 1):  %.2f s\nparallel   (-j %d):  %.2f s\n"
      seq_s jobs par_s;
    let identical = String.equal seq_front par_front in
    let faster = par_s < seq_s in
    if identical then print_string "Pareto fronts byte-identical\n"
    else print_string "Pareto fronts DIFFER (determinism violation)\n";
    if faster then
      Printf.printf "speedup x%.2f\n" (if par_s > 0. then seq_s /. par_s else 0.)
    else
      Printf.printf "parallel pass NOT faster (x%.2f)\n"
        (if par_s > 0. then seq_s /. par_s else 0.);
    if identical && faster then 0 else exit_gate
  end

let run_dse interconnect sequence max_tiles max_slices jobs deadline
    task_timeout retries checkpoint resume no_memo assert_scaling analysis =
  let jobs = resolve_jobs jobs in
  if no_memo then Sdf.Throughput.set_memoize false;
  match Mjpeg.Streams.by_name sequence with
  | None ->
      Printf.eprintf "unknown sequence %S; available: %s\n" sequence
        (String.concat ", "
           (List.map
              (fun s -> s.Mjpeg.Streams.seq_name)
              (Mjpeg.Streams.all ())));
      exit_error
  | Some seq -> (
      match Experiments.calibrated_mjpeg seq with
      | Error e ->
          Printf.eprintf "flow failed: %s\n" e;
          exit_error
      | Ok app ->
          let interconnects =
            match interconnect with
            | `Fsl -> [ Arch.Template.Use_fsl Arch.Fsl.default ]
            | `Noc -> [ Arch.Template.Use_noc Arch.Noc.default_config ]
            | `Both ->
                [
                  Arch.Template.Use_fsl Arch.Fsl.default;
                  Arch.Template.Use_noc Arch.Noc.default_config;
                ]
          in
          let tile_counts =
            Option.map (fun n -> List.init n (fun i -> i + 1)) max_tiles
          in
          if assert_scaling then
            run_dse_assert_scaling app ~interconnects ~tile_counts ~jobs
              ~analysis
          else if
            deadline <> None || task_timeout <> None || retries <> None
            || checkpoint <> None || resume <> None
          then
            run_dse_anytime app ~interconnects ~tile_counts ~max_slices ~jobs
              ~deadline ~task_timeout ~retries ~checkpoint ~resume ~analysis
          else begin
          let start = Exec.Clock.now () in
          let points, failures =
            Core.Dse.explore app ?tile_counts ~interconnects
              ~options:(Experiments.flow_options_with ~analysis ())
              ~jobs ()
          in
          let seconds = Exec.Clock.elapsed_since start in
          Format.printf "%a@." Core.Dse.pp_table points;
          List.iter
            (fun (tiles, interc, reason) ->
              Printf.printf "infeasible: %d %s tile(s): %s\n" tiles interc
                reason)
            failures;
          let front = Core.Dse.pareto points in
          Format.printf "@.Pareto front (guarantee vs. slices):@.%a@."
            Core.Dse.pp_table front;
          (match max_slices with
          | None -> ()
          | Some budget -> (
              match Core.Dse.best_under_area points ~max_slices:budget with
              | None ->
                  Printf.printf
                    "no feasible point within %d slices\n" budget
              | Some p ->
                  Printf.printf
                    "best under %d slices: %s with %d tile(s), %d slices\n"
                    budget
                    (Core.Dse.interconnect_label p.Core.Dse.interconnect)
                    p.Core.Dse.tile_count p.Core.Dse.slices));
          Printf.printf
            "%d design point(s), %d infeasible, %.2f s wall on %d domain(s)\n"
            (List.length points) (List.length failures) seconds jobs;
          0
          end)

let dse_cmd =
  let interconnect =
    Arg.(
      value
      & opt (enum [ ("fsl", `Fsl); ("noc", `Noc); ("both", `Both) ]) `Both
      & info [ "interconnect"; "i" ] ~docv:"KIND"
          ~doc:"Interconnects to sweep: $(b,fsl), $(b,noc) or $(b,both).")
  in
  let sequence =
    Arg.(
      value
      & opt string "synthetic"
      & info [ "sequence"; "s" ] ~docv:"NAME"
          ~doc:"MJPEG test sequence the flow is calibrated against.")
  in
  let max_tiles =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-tiles" ] ~docv:"N"
          ~doc:
            "Sweep platforms of 1..$(docv) tiles (default: up to one tile \
             per actor).")
  in
  let max_slices =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-slices" ] ~docv:"N"
          ~doc:"Also report the best point within an area budget of \
                $(docv) slices.")
  in
  let deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:
            "Wall-clock budget for the whole sweep. When it fires the \
             command prints the partial result with a degradation report \
             and exits with status 3; combine with $(b,--checkpoint) to \
             make the partial sweep resumable.")
  in
  let task_timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "task-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Wall-clock budget per design point; a point that exceeds it \
             is reported as a typed infeasibility instead of hanging the \
             sweep.")
  in
  let retries =
    Arg.(
      value
      & opt (some int) None
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Total attempts per design point (default 1): failing or \
             timed-out points are retried with deterministic exponential \
             backoff.")
  in
  let checkpoint =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Atomically rewrite $(docv) with the evaluated points after \
             every chunk; a later $(b,--resume) continues from it.")
  in
  let resume =
    Arg.(
      value
      & opt (some string) None
      & info [ "resume" ] ~docv:"FILE"
          ~doc:
            "Adopt the evaluated points of a previous run's checkpoint and \
             evaluate only the remainder. The combined report is \
             byte-identical to an uninterrupted run.")
  in
  let assert_scaling =
    Arg.(
      value & flag
      & info [ "assert-scaling" ]
          ~doc:
            "CI gate: run the sweep at $(b,-j 1) and again at the \
             requested $(b,-j) in one process, then fail (exit 4) unless \
             the second pass is strictly faster and its Pareto front \
             byte-identical. Requires $(b,-j 2) or more.")
  in
  Cmd.v
    (Cmd.info "dse"
       ~doc:
         "Design-space exploration: run the full flow on every (tile \
          count, interconnect) candidate and print the guarantee/area \
          Pareto front"
       ~exits:
         (Cmd.Exit.info 3
            ~doc:
              "the $(b,--deadline) fired and the result is partial (a \
               degradation report is printed; resume from the checkpoint)"
         :: Cmd.Exit.info 4
              ~doc:
                "$(b,--assert-scaling) found a scaling or determinism \
                 regression"
         :: Cmd.Exit.defaults))
    Term.(
      const run_dse $ interconnect $ sequence $ max_tiles $ max_slices
      $ jobs_term $ deadline $ task_timeout $ retries $ checkpoint $ resume
      $ no_memo_term $ assert_scaling $ analysis_auto_term)

(* --- profile ----------------------------------------------------------------- *)

let mkdir_p dir =
  let rec go d =
    if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      Sys.mkdir d 0o755
    end
  in
  go dir

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

(* flow + one fully-probed measurement of either the MJPEG case study or a
   seeded conformance workload *)
let run_profile seed interconnect sequence passes iterations out_dir jobs
    no_memo analysis =
  let jobs = resolve_jobs jobs in
  if no_memo then Sdf.Throughput.set_memoize false;
  let ( let* ) = Result.bind in
  let flow_err r = Result.map_error Core.Flow_error.to_string r in
  let result =
    match seed with
    | Some seed ->
        let w = Gen.Workload.generate ~seed () in
        let choice = Conformance.Engine.interconnect_for_seed seed in
        let* flow =
          flow_err
            (Core.Design_flow.run_auto w.Gen.Workload.application
               ~options:{ Mapping.Flow_map.default_options with analysis }
               choice ())
        in
        let iters = Option.value iterations ~default:50 in
        let* p = flow_err (Core.Design_flow.profile flow ~iterations:iters ()) in
        Ok (Printf.sprintf "seed%d" seed, flow, p)
    | None -> (
        match Mjpeg.Streams.by_name sequence with
        | None ->
            Error
              (Printf.sprintf "unknown sequence %S; available: %s" sequence
                 (String.concat ", "
                    (List.map
                       (fun s -> s.Mjpeg.Streams.seq_name)
                       (Mjpeg.Streams.all ()))))
        | Some seq ->
            let* app = Experiments.calibrated_mjpeg seq in
            let* flow =
              flow_err
                (Core.Design_flow.run_auto app
                   ~options:(Experiments.flow_options_with ~analysis ())
                   (interconnect_of interconnect) ())
            in
            let iters =
              Option.value iterations
                ~default:(passes * Mjpeg.Streams.mcus seq)
            in
            let* p =
              flow_err (Core.Design_flow.profile flow ~iterations:iters ())
            in
            Ok ("mjpeg-" ^ sequence, flow, p))
  in
  match result with
  | Error msg ->
      Printf.eprintf "profile failed: %s\n" msg;
      exit_error
  | Ok (label, flow, p) ->
      let report = Format.asprintf "%a" Core.Report.pp_profile (flow, p) in
      print_string report;
      print_newline ();
      mkdir_p out_dir;
      let path name = Filename.concat out_dir name in
      (* the three artifact renderings are independent pure functions of
         the finished trace, so -j fans them out over the pool *)
      let artifacts =
        [
          ("profile.txt", fun () -> report);
          ( "trace.json",
            fun () ->
              (* budget counters ride along as Chrome counter tracks *)
              let m = p.Core.Design_flow.pf_metrics in
              let counters =
                List.map (fun (n, v) -> ("exec." ^ n, v))
                  (Obs.Metrics.with_prefix m "exec")
                @ List.map (fun (n, v) -> ("dse." ^ n, v))
                    (Obs.Metrics.with_prefix m "dse")
                @ [ ("sim.cycles", Obs.Metrics.counter m "sim.cycles") ]
              in
              Sim.Trace.to_chrome_json ~process_name:label ~counters
                p.Core.Design_flow.pf_trace );
          ( "trace.vcd",
            fun () ->
              Sim.Trace.to_vcd ~design:"mamps_platform"
                p.Core.Design_flow.pf_trace );
        ]
      in
      let render (name, f) = (name, f ()) in
      let rendered =
        if jobs <= 1 then List.map render artifacts
        else
          Exec.Pool.with_pool ~jobs (fun pool ->
              Exec.Pool.map pool render artifacts)
      in
      List.iter
        (fun (name, contents) -> write_file (path name) contents)
        rendered;
      Printf.printf
        "wrote %s, %s (chrome://tracing) and %s (%d spans) for %s\n"
        (path "profile.txt") (path "trace.json") (path "trace.vcd")
        (Sim.Trace.span_count p.Core.Design_flow.pf_trace)
        label;
      0

let profile_cmd =
  let seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "Profile the seeded conformance workload $(docv) (interconnect \
             chosen as in the conformance matrix) instead of the MJPEG case \
             study.")
  in
  let interconnect =
    Arg.(
      value
      & opt (enum [ ("fsl", `Fsl); ("noc", `Noc) ]) `Fsl
      & info [ "interconnect"; "i" ] ~docv:"KIND"
          ~doc:"Interconnect for the MJPEG platform: $(b,fsl) or $(b,noc).")
  in
  let sequence =
    Arg.(
      value
      & opt string "synthetic"
      & info [ "sequence"; "s" ] ~docv:"NAME"
          ~doc:"MJPEG test sequence to profile.")
  in
  let passes =
    Arg.(
      value
      & opt int 2
      & info [ "passes" ] ~docv:"N"
          ~doc:"Stream passes to simulate (MJPEG profile).")
  in
  let iterations =
    Arg.(
      value
      & opt (some int) None
      & info [ "iterations" ] ~docv:"N"
          ~doc:"Override the number of simulated graph iterations.")
  in
  let out_dir =
    Arg.(
      value
      & opt string "_profile"
      & info [ "out"; "o" ] ~docv:"DIR"
          ~doc:
            "Write $(b,profile.txt), $(b,trace.json) (Chrome tracing) and \
             $(b,trace.vcd) here.")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Measure a platform with every probe armed: per-link utilization, \
          NoC hop loads, FIFO and descriptor-queue peaks, firing-latency \
          histograms, flow phase times — plus a Chrome trace of every \
          firing and token transfer")
    Term.(
      const run_profile $ seed $ interconnect $ sequence $ passes $ iterations
      $ out_dir $ jobs_term $ no_memo_term $ analysis_term)

(* --- experiments ------------------------------------------------------------------ *)

let run_experiments () =
  let ok = ref 0 in
  (match Experiments.figure6 (Arch.Template.Use_fsl Arch.Fsl.default) () with
  | Error e ->
      Printf.eprintf "figure 6a failed: %s\n" e;
      ok := exit_error
  | Ok results ->
      Format.printf "Figure 6a (FSL):@.%a@.@." Core.Report.pp_throughput_table
        (List.map (fun r -> r.Experiments.row) results));
  (match Experiments.table1 () with
  | Error e ->
      Printf.eprintf "table 1 failed: %s\n" e;
      ok := exit_error
  | Ok times ->
      Format.printf "Table 1:@.%a@.@." Core.Report.pp_effort_table times);
  let area = Experiments.noc_area () in
  Format.printf "NoC flow control: +%d%% slices (paper ~12%%)@."
    area.Experiments.overhead_percent;
  !ok

let experiments_cmd =
  Cmd.v
    (Cmd.info "experiments" ~doc:"Reproduce the paper's evaluation tables")
    Term.(const run_experiments $ const ())

(* --- conformance ------------------------------------------------------------- *)

let run_conformance count base_seed out_dir replay jobs seed_timeout no_memo
    analysis =
  let jobs = resolve_jobs jobs in
  if no_memo then Sdf.Throughput.set_memoize false;
  let options =
    {
      Conformance.Engine.default_options with
      seed_timeout;
      memo = not no_memo;
      analysis;
    }
  in
  match replay with
  | Some seed ->
      (* one seed, full verdict — the reproducer replay path *)
      let case = Conformance.Engine.check_seed ~options seed in
      Format.printf "%a@." Conformance.Engine.pp_case case;
      if case.Conformance.Engine.c_violations = [] then 0 else exit_gate
  | None ->
      (* first ^C stops admitting new seeds; the report then covers the
         prefix already evaluated, which is still a valid (smaller) suite *)
      let cancel = Exec.Budget.token () in
      cancel_on_sigint cancel;
      let report =
        Conformance.Engine.run_suite ~options ~out_dir ~jobs ~cancel ~base_seed
          ~count
          ~progress:(fun c ->
            if c.Conformance.Engine.c_violations <> [] then
              Format.eprintf "%a@." Conformance.Engine.pp_case c)
          ()
      in
      Format.printf "%a@." Conformance.Engine.pp_report report;
      let interrupted = Exec.Budget.cancelled cancel in
      if interrupted then
        Printf.eprintf
          "interrupted: %d of %d seed(s) evaluated before SIGINT\n"
          (List.length report.Conformance.Engine.r_cases)
          count;
      if not (Conformance.Engine.passed report) then begin
        List.iter
          (fun f ->
            match f.Conformance.Engine.f_reproducer with
            | Some dir -> Printf.printf "reproducer: %s\n" dir
            | None -> ())
          report.Conformance.Engine.r_failures;
        exit_gate
      end
      else if interrupted then exit_partial
      else 0

let conformance_cmd =
  let count =
    Arg.(
      value & opt int 200
      & info [ "count" ] ~docv:"N"
          ~doc:"Number of seeded random workloads to check.")
  in
  let base_seed =
    Arg.(
      value & opt int 0
      & info [ "base-seed" ] ~docv:"N"
          ~doc:"First seed of the matrix; seeds run N .. N+count-1.")
  in
  let out_dir =
    Arg.(
      value & opt string "_conformance"
      & info [ "out" ] ~docv:"DIR"
          ~doc:"Where failing cases write their shrunk reproducers.")
  in
  let replay =
    Arg.(
      value
      & opt (some int) None
      & info [ "replay" ] ~docv:"SEED"
          ~doc:"Re-check a single seed (as written in a reproducer's \
                case.txt) instead of running the matrix.")
  in
  let seed_timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "seed-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Wall-clock budget per seed: a seed whose oracle evaluation \
             exceeds it fails with a $(b,seed-timeout) violation and a \
             reproducer instead of hanging the suite.")
  in
  Cmd.v
    (Cmd.info "conformance"
       ~doc:
         "Check the analysis, the functional engine and the platform \
          simulator against each other on seeded random SDF workloads")
    Term.(
      const run_conformance $ count $ base_seed $ out_dir $ replay
      $ jobs_term $ seed_timeout $ no_memo_term $ analysis_term)

(* --- recover ----------------------------------------------------------------- *)

(* "A->B" is a directed mesh hop; anything else names a point-to-point
   (FSL) channel *)
let link_scenario ~at_cycle s =
  match Scanf.sscanf_opt s " %d->%d %!" (fun a b -> (a, b)) with
  | Some hop -> Recover.Kill_hop { hop; at_cycle }
  | None -> Recover.Kill_channel { channel = s; at_cycle }

let outcome_json scenario outcome =
  let module Json = Core.Json in
  (* Report.to_json already returns serialized JSON; re-parse it so the
     outcome document nests it structurally instead of by string splicing *)
  let report_value s =
    match Json.of_string s with Ok v -> v | Error _ -> Json.String s
  in
  let fields =
    match (outcome : Recover.outcome) with
    | Recover.Tolerated _ -> [ ("outcome", Json.String "tolerated") ]
    | Recover.Repaired (report, _) ->
        [
          ("outcome", Json.String "repaired");
          ("report", report_value (Recover.Report.to_json report));
        ]
    | Recover.Unrepairable e ->
        [
          ("outcome", Json.String "unrepairable");
          ("typed", Json.Bool (Recover.typed_unrepairable e));
          ("error", Json.String (Recover.error_to_string e));
        ]
    | Recover.Undiagnosed e ->
        [
          ("outcome", Json.String "undiagnosed");
          ("error", Json.String (Sim.Platform_sim.error_to_string e));
        ]
  in
  Json.to_string
    (Json.Obj
       (("scenario", Json.String (Recover.scenario_name scenario)) :: fields))

let run_recover interconnect sequence tiles kill_tile kill_link at_cycle sweep
    passes out_dir jobs =
  let jobs = resolve_jobs jobs in
  match Mjpeg.Streams.by_name sequence with
  | None ->
      Printf.eprintf "unknown sequence %S; available: %s\n" sequence
        (String.concat ", "
           (List.map
              (fun s -> s.Mjpeg.Streams.seq_name)
              (Mjpeg.Streams.all ())));
      exit_error
  | Some seq -> (
      let ( let* ) = Result.bind in
      let result =
        let* app = Experiments.calibrated_mjpeg seq in
        Result.map_error Core.Flow_error.to_string
          (Core.Design_flow.run_auto app ?tiles
             (interconnect_of interconnect) ())
      in
      match result with
      | Error msg ->
          Printf.eprintf "flow failed: %s\n" msg;
          exit_error
      | Ok flow -> (
          let mapping = flow.Core.Design_flow.mapping in
          let iterations = passes * Mjpeg.Streams.mcus seq in
          let scenarios =
            if sweep then Recover.scenarios ~at_cycle mapping
            else
              (match kill_tile with
              | Some tile -> [ Recover.Kill_tile { tile; at_cycle } ]
              | None -> [])
              @
              match kill_link with
              | Some s -> [ link_scenario ~at_cycle s ]
              | None -> []
          in
          (* a typo'd channel name or an off-mesh hop would never bite and
             report as "tolerated" — reject it before running anything *)
          let graph = mapping.Mapping.Flow_map.timed_graph in
          let tile_count =
            Arch.Platform.tile_count mapping.Mapping.Flow_map.platform
          in
          let rejections =
            List.filter_map
              (function
                | Recover.Kill_channel { channel; _ }
                  when Sdf.Graph.find_channel graph channel = None ->
                    Some
                      (Printf.sprintf "unknown channel %S; channels: %s" channel
                         (String.concat ", "
                            (List.map
                               (fun (c : Sdf.Graph.channel) ->
                                 c.Sdf.Graph.channel_name)
                               (Sdf.Graph.channels graph))))
                | Recover.Kill_hop { hop = a, b; _ }
                  when a < 0 || b < 0 || a >= tile_count || b >= tile_count ->
                    Some
                      (Printf.sprintf
                         "hop %d->%d out of range for a %d-tile platform" a b
                         tile_count)
                | _ -> None)
              scenarios
          in
          match scenarios with
          | _ when rejections <> [] ->
              List.iter (Printf.eprintf "%s\n") rejections;
              exit_error
          | [] ->
              Printf.eprintf
                "nothing to inject: pass --kill-tile, --kill-link or --sweep\n";
              exit_error
          | scenarios ->
              (match flow.Core.Design_flow.guarantee with
              | Some g ->
                  Format.printf "healthy guarantee: %s MCU/cycle@."
                    (Sdf.Rational.to_string g)
              | None -> Format.printf "healthy design has no guarantee@.");
              let eval s =
                (s, Recover.evaluate_scenario mapping s ~iterations ())
              in
              (* the pool map preserves scenario order, so the report is
                 byte-identical for every -j *)
              let outcomes =
                if jobs <= 1 then List.map eval scenarios
                else
                  Exec.Pool.with_pool ~jobs (fun pool ->
                      Exec.Pool.map pool eval scenarios)
              in
              List.iter
                (fun (s, o) ->
                  Format.printf "%-14s %a@."
                    (Recover.scenario_name s)
                    Recover.pp_outcome o)
                outcomes;
              (match out_dir with
              | None -> ()
              | Some dir ->
                  mkdir_p dir;
                  List.iter
                    (fun (s, o) ->
                      write_file
                        (Filename.concat dir (Recover.scenario_name s ^ ".json"))
                        (outcome_json s o ^ "\n"))
                    outcomes;
                  Printf.printf "wrote %d report(s) to %s\n"
                    (List.length outcomes) dir);
              let bad =
                List.filter (fun (_, o) -> not (Recover.outcome_ok o)) outcomes
              in
              if bad = [] then 0
              else begin
                Printf.eprintf "%d scenario(s) were not survived cleanly\n"
                  (List.length bad);
                exit_gate
              end))

let recover_cmd =
  let interconnect =
    Arg.(
      value
      & opt (enum [ ("fsl", `Fsl); ("noc", `Noc) ]) `Noc
      & info [ "interconnect"; "i" ] ~docv:"KIND"
          ~doc:"Interconnect: $(b,fsl) point-to-point or the $(b,noc).")
  in
  let sequence =
    Arg.(
      value
      & opt string "synthetic"
      & info [ "sequence"; "s" ] ~docv:"NAME"
          ~doc:"MJPEG test sequence to decode while the fault bites.")
  in
  let tiles =
    Arg.(
      value
      & opt (some int) (Some 4)
      & info [ "tiles" ] ~docv:"N"
          ~doc:
            "Cap the generated platform at $(docv) tiles so actors share \
             PEs and a dead tile has somewhere to migrate to (default 4).")
  in
  let kill_tile =
    Arg.(
      value
      & opt (some int) None
      & info [ "kill-tile" ] ~docv:"N"
          ~doc:"Permanently fail tile $(docv).")
  in
  let kill_link =
    Arg.(
      value
      & opt (some string) None
      & info [ "kill-link" ] ~docv:"LINK"
          ~doc:
            "Permanently fail a link: $(b,A->B) is the directed NoC mesh \
             hop from tile A to tile B; any other value names a \
             point-to-point channel.")
  in
  let at_cycle =
    Arg.(
      value
      & opt int 0
      & info [ "at" ] ~docv:"CYCLE"
          ~doc:"Cycle at which the resource dies (default 0).")
  in
  let sweep =
    Arg.(
      value & flag
      & info [ "sweep" ]
          ~doc:
            "Inject every single-resource permanent fault the mapped \
             design can suffer, one scenario at a time.")
  in
  let passes =
    Arg.(
      value
      & opt int 1
      & info [ "passes" ] ~docv:"N"
          ~doc:"Stream passes to simulate per scenario.")
  in
  let out_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"DIR"
          ~doc:"Write one JSON recovery report per scenario here.")
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:
         "Self-healing: inject a permanent tile or link fault into the \
          mapped MJPEG platform, diagnose the stall, re-map around the \
          dead resource and re-verify the degraded guarantee")
    Term.(
      const run_recover $ interconnect $ sequence $ tiles $ kill_tile
      $ kill_link $ at_cycle $ sweep $ passes $ out_dir $ jobs_term)

(* --- serve ------------------------------------------------------------------- *)

let run_serve host port queue_capacity max_connections workers journal
    no_journal timeout max_body_mib =
  let journal_path =
    if no_journal then None
    else begin
      (* the default lives under _serve/ next to the other artefact dirs;
         create the parent so first launch does not need a manual mkdir *)
      let dir = Filename.dirname journal in
      (try if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
       with Unix.Unix_error _ -> ());
      Some journal
    end
  in
  let config =
    {
      Serve.Server.default_config with
      host;
      port;
      queue_capacity;
      max_connections;
      workers =
        (if workers <= 0 then Exec.Pool.parallelism ~default:2 ()
         else workers);
      journal_path;
      default_timeout = (if timeout <= 0. then None else Some timeout);
      max_body_bytes = max_body_mib * 1024 * 1024;
    }
  in
  match Serve.Server.create config with
  | Error msg ->
      Printf.eprintf "serve: %s\n" msg;
      exit_error
  | Ok server ->
      (* SIGTERM and SIGINT both drain: stop admission, finish the
         backlog under its budgets, close the journal, exit 0. drain
         only sets an atomic flag, so it is safe in a signal handler. *)
      let on_signal _ = Serve.Server.drain server in
      List.iter
        (fun s ->
          try Sys.set_signal s (Sys.Signal_handle on_signal)
          with Invalid_argument _ | Sys_error _ -> ())
        [ Sys.sigterm; Sys.sigint ];
      Printf.printf "listening on http://%s:%d (%d worker(s), queue %d, %s)\n%!"
        host
        (Serve.Server.port server)
        config.Serve.Server.workers config.Serve.Server.queue_capacity
        (match journal_path with
        | Some p -> "journal " ^ p
        | None -> "no journal");
      Serve.Server.run server;
      print_string "drained\n";
      0

let serve_cmd =
  let host =
    Arg.(
      value
      & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"ADDR" ~doc:"Bind address.")
  in
  let port =
    Arg.(
      value
      & opt int 8124
      & info [ "port"; "p" ] ~docv:"PORT"
          ~doc:"TCP port; $(b,0) picks an ephemeral one (printed on start).")
  in
  let queue =
    Arg.(
      value
      & opt int 64
      & info [ "queue" ] ~docv:"N"
          ~doc:
            "Admission bound: jobs admitted but not yet finished. A full \
             queue answers $(b,429) with $(b,Retry-After) instead of \
             accepting unbounded work.")
  in
  let max_conns =
    Arg.(
      value
      & opt int 32
      & info [ "max-conns" ] ~docv:"N"
          ~doc:"Concurrent connection threads before answering $(b,503).")
  in
  let workers =
    Arg.(
      value
      & opt int 2
      & info [ "workers"; "j" ] ~docv:"N"
          ~doc:
            "Executor domains running jobs off the queue ($(b,0) means \
             one per core).")
  in
  let journal =
    Arg.(
      value
      & opt string (Filename.concat "_serve" "journal.log")
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Job journal for crash safety: every transition is appended \
             here, and a restart replays it — queued jobs re-enqueue, \
             mid-flight ones report $(b,interrupted), finished ones \
             answer from the stored outcome.")
  in
  let no_journal =
    Arg.(
      value & flag
      & info [ "no-journal" ]
          ~doc:"Run without the journal (no crash safety).")
  in
  let timeout =
    Arg.(
      value
      & opt float 60.
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:
            "Default per-job budget (the watchdog) when a request names \
             none; a job over budget answers $(b,504), with the partial \
             DSE front where the anytime sweep produced one. \
             $(b,--timeout 0) disables it.")
  in
  let max_body =
    Arg.(
      value
      & opt int 4
      & info [ "max-body" ] ~docv:"MIB"
          ~doc:"Largest accepted request body, in MiB ($(b,413) beyond).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Mapping-as-a-service: a crash-safe, backpressured HTTP daemon \
          over the flow — POST an SDF graph to $(b,/jobs), poll or \
          $(b,wait=1) for the mapping result; $(b,/healthz), \
          $(b,/readyz) and $(b,/metrics) for operations")
    Term.(
      const run_serve $ host $ port $ queue $ max_conns $ workers $ journal
      $ no_journal $ timeout $ max_body)

let () =
  let doc =
    "An automated flow to map throughput-constrained applications to a MPSoC"
  in
  exit
    (Cmd.eval'
       (Cmd.group
          (Cmd.info "mamps_flow" ~version:"1.0.0" ~doc)
          [
            graph_cmd;
            mjpeg_cmd;
            dse_cmd;
            profile_cmd;
            experiments_cmd;
            conformance_cmd;
            recover_cmd;
            serve_cmd;
          ]))

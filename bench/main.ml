(* The benchmark harness: regenerates every table and figure of the paper's
   evaluation section (see DESIGN.md section 4 for the index) and times the
   flow's automated steps with Bechamel.

   Output, in order:
     figure 2   the example SDF graph and its analyses
     figure 3   template tile variants and their area
     figure 4   the communication model inserted on a producer/consumer pair
     figure 5   the MJPEG application graph and its WCET table
     figure 6a  worst-case / expected / measured throughput, FSL platform
     figure 6b  the same on the SDM NoC platform
     table 1    designer effort (automated steps measured live)
     section 6.3    the communication-assist prediction study
     section 5.3.1  NoC flow-control area overhead
     profile        the probe-armed measurement behind `mamps_flow profile`
     microbenchmarks (Bechamel) for the flow's hot steps *)

open Bechamel
open Toolkit

let line () = print_endline (String.make 72 '=')

let section title =
  line ();
  Printf.printf "%s\n" title;
  line ()

(* --- BENCH.json ------------------------------------------------------------- *)

(* every measured quantity lands here and is written out as BENCH.json at
   the end, so the perf trajectory is tracked across PRs (schema in
   README). Schema v2: each entry carries a [value]/[unit] pair so
   dimensionless quantities (the recovery degradation ratios) are no
   longer mislabelled as seconds; timings additionally keep the v1
   [wall_seconds] field for downstream tooling. *)
let bench_entries : (string * float * string * int * int) list ref = ref []

let record ?(unit = "seconds") ~name ~value ~iterations ~domains () =
  bench_entries := (name, value, unit, iterations, domains) :: !bench_entries

let timed_section name f =
  let (), wall = Exec.Clock.timed f in
  record ~name ~value:wall ~iterations:1 ~domains:1 ()

let write_bench_json path =
  let module Json = Core.Json in
  let entries = List.rev !bench_entries in
  let n = List.length entries in
  let entry_json (name, value, unit, iterations, domains) =
    Json.Obj
      ([ ("name", Json.String name);
         ("value", Json.Float value);
         ("unit", Json.String unit);
       ]
      @ (if String.equal unit "seconds" then
           [ ("wall_seconds", Json.Float value) ]
         else [])
      @ [ ("iterations", Json.Int iterations); ("domains", Json.Int domains) ])
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      (* one entry per line keeps the file diff-friendly across PRs while
         each line stays canonical Core.Json output *)
      output_string oc "{\n  \"schema_version\": 2,\n  \"entries\": [\n";
      List.iteri
        (fun i e ->
          output_string oc
            (Printf.sprintf "    %s%s\n"
               (Json.to_string (entry_json e))
               (if i = n - 1 then "" else ",")))
        entries;
      output_string oc "  ]\n}\n");
  Printf.printf "wrote %s (%d entries)\n" path n

(* --- figure 2 -------------------------------------------------------------- *)

let figure2_graph () =
  let g = Sdf.Graph.empty "figure2" in
  let g, a = Sdf.Graph.add_actor g ~name:"A" ~execution_time:10 in
  let g, b = Sdf.Graph.add_actor g ~name:"B" ~execution_time:4 in
  let g, c = Sdf.Graph.add_actor g ~name:"C" ~execution_time:6 in
  let g, _ =
    Sdf.Graph.add_channel g ~name:"a2b" ~source:a ~production_rate:2 ~target:b
      ~consumption_rate:1 ()
  in
  let g, _ =
    Sdf.Graph.add_channel g ~name:"a2c" ~source:a ~production_rate:1 ~target:c
      ~consumption_rate:1 ()
  in
  let g, _ =
    Sdf.Graph.add_channel g ~name:"b2c" ~source:b ~production_rate:1 ~target:c
      ~consumption_rate:2 ()
  in
  let g, _ =
    Sdf.Graph.add_channel g ~name:"aState" ~source:a ~production_rate:1
      ~target:a ~consumption_rate:1 ~initial_tokens:1 ()
  in
  g

let figure2 () =
  section "Figure 2 - example SDF graph (3 actors, self-edge state)";
  let g = figure2_graph () in
  let q = Sdf.Repetition.vector_exn g in
  Printf.printf "repetition vector: A=%d B=%d C=%d (paper: 1, 2, 1)\n" q.(0)
    q.(1) q.(2);
  Printf.printf "deadlock free: %b\n" (Sdf.Analysis.is_deadlock_free g);
  Format.printf "self-timed: %a@." Sdf.Throughput.pp_result
    (Sdf.Throughput.analyse g)

(* --- figure 3 -------------------------------------------------------------- *)

let figure3 () =
  section "Figure 3 - MAMPS tile variants (template instances and area)";
  Printf.printf "%-28s %8s %6s %5s\n" "tile variant" "slices" "BRAM" "DSP";
  List.iter
    (fun (label, tile) ->
      let a = Arch.Area.tile tile in
      Printf.printf "%-28s %8d %6d %5d\n" label a.Arch.Area.slices
        a.Arch.Area.bram_blocks a.Arch.Area.dsp_slices)
    [
      ("tile 1: master (PE+mem+IO)", Arch.Tile.master "t");
      ("tile 2: slave (PE+mem)", Arch.Tile.slave "t");
      ("tile 3: with CA", Arch.Tile.with_ca "t");
      ("tile 4: hardware IP", Arch.Tile.ip_block ~name:"t" ~ip:"idct_core");
    ]

(* --- figure 4 -------------------------------------------------------------- *)

let figure4 () =
  section "Figure 4 - communication model for one inter-tile channel";
  List.iter
    (fun (label, choice) ->
      match Experiments.fig4_demo ~token_bytes:64 ~interconnect:choice () with
      | Error e -> Printf.printf "%s: failed (%s)\n" label e
      | Ok demo ->
          Printf.printf
            "%-4s unmapped %-8s mapped %-8s (conservative: %b), model: %d \
             actors / %d channels\n"
            label
            (Sdf.Rational.to_string demo.Experiments.original_throughput)
            (Sdf.Rational.to_string demo.Experiments.mapped_throughput)
            (Sdf.Rational.compare demo.Experiments.mapped_throughput
               demo.Experiments.original_throughput
            <= 0)
            demo.Experiments.expanded_actors demo.Experiments.expanded_channels)
    [
      ("fsl", Arch.Template.Use_fsl Arch.Fsl.default);
      ("noc", Arch.Template.Use_noc Arch.Noc.default_config);
    ]

(* --- figure 5 -------------------------------------------------------------- *)

let figure5 () =
  section "Figure 5 - the MJPEG decoder application";
  let seq = Mjpeg.Streams.synthetic () in
  let g = Mjpeg.Mjpeg_app.graph ~stream:seq.Mjpeg.Streams.seq_stream in
  Printf.printf "actors: %d, channels: %d (paper: 5 actors, 8 channels)\n"
    (Sdf.Graph.actor_count g) (Sdf.Graph.channel_count g);
  let q = Sdf.Repetition.vector_exn g in
  Printf.printf "repetition vector:";
  List.iter
    (fun name ->
      let id = (Sdf.Graph.actor_of_name g name).Sdf.Graph.actor_id in
      Printf.printf " %s=%d" name q.(id))
    Mjpeg.Mjpeg_app.actor_names;
  Printf.printf "\nstructural WCETs (cycles):";
  List.iter
    (fun (name, wcet) -> Printf.printf " %s=%d" name wcet)
    (Mjpeg.Mjpeg_app.wcet_table ());
  print_newline ()

(* --- figure 6 -------------------------------------------------------------- *)

(* the plottable series behind the bar chart, one row per sequence *)
let write_csv path rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc
        "sequence,worst_case_mcu_per_mhz_s,expected,measured\n";
      List.iter
        (fun (r : Core.Report.throughput_row) ->
          let cell = function
            | Some v -> Printf.sprintf "%.6f" (Core.Report.mcus_per_mhz_second v)
            | None -> ""
          in
          output_string oc
            (Printf.sprintf "%s,%.6f,%s,%s\n" r.Core.Report.row_label
               (Core.Report.mcus_per_mhz_second r.Core.Report.worst_case)
               (cell r.Core.Report.expected)
               (cell r.Core.Report.measured)))
        rows);
  Printf.printf "series written to %s\n" path

let figure6 label choice ~paper_note =
  section
    (Printf.sprintf "Figure 6%s - throughput on the %s platform" label
       (match choice with
       | Arch.Template.Use_fsl _ -> "FSL point-to-point"
       | Arch.Template.Use_noc _ -> "SDM NoC"));
  match Experiments.figure6 choice () with
  | Error e -> Printf.printf "failed: %s\n" e
  | Ok results ->
      let rows = List.map (fun r -> r.Experiments.row) results in
      Format.printf "%a@." Core.Report.pp_throughput_table rows;
      Printf.printf "%s\n" paper_note;
      Printf.printf "bound respected on every sequence: %b\n"
        (List.for_all Core.Report.bound_respected rows);
      write_csv (Printf.sprintf "figure6%s.csv" label) rows

(* --- table 1 ---------------------------------------------------------------- *)

let table1 () =
  section "Table 1 - designer effort";
  match Experiments.table1 () with
  | Error e -> Printf.printf "failed: %s\n" e
  | Ok times ->
      Format.printf "%a@." Core.Report.pp_effort_table times;
      Printf.printf
        "(paper automated steps: 1 s arch model, 1 min mapping, 16 s project, \
         17 min XPS synthesis; our synthesis stand-in elaborates the \
         simulator instead of running XPS)\n"

(* --- section 6.3 ------------------------------------------------------------- *)

let section63 () =
  section "Section 6.3 - communication assist study (model-level)";
  List.iter
    (fun (label, scale) ->
      match Experiments.ca_study ~pe_serialization_scale:scale () with
      | Error e -> Printf.printf "%s: failed (%s)\n" label e
      | Ok study ->
          Printf.printf
            "%-44s without CA %-10s with CA %-10s improvement +%d%%\n" label
            (Sdf.Rational.to_string study.Experiments.baseline)
            (Sdf.Rational.to_string study.Experiments.with_ca)
            study.Experiments.improvement_percent)
    [
      ("calibrated Microblaze copy loops (x1)", 1);
      ("slower software comm (x4)", 4);
      ("slower software comm (x8)", 8);
      ("handshake-heavy software comm (x16)", 16);
    ];
  Printf.printf "(paper: up to +300%% on a communication-dominated platform)\n"

(* Same study with the symbolic (max,+) analysis: identical guarantees, but
   MCM on the expanded HSDF graph replaces simulate-to-convergence, so the
   cost no longer grows with the serialization scale. Timed against
   section.63 from a cold analysis cache. *)
let section63_mcm () =
  section "Section 6.3 - CA study, symbolic (max,+) analysis";
  List.iter
    (fun (label, scale) ->
      match
        Experiments.ca_study ~pe_serialization_scale:scale ~analysis:`Mcm ()
      with
      | Error e -> Printf.printf "%s: failed (%s)\n" label e
      | Ok study ->
          Printf.printf
            "%-44s without CA %-10s with CA %-10s improvement +%d%%\n" label
            (Sdf.Rational.to_string study.Experiments.baseline)
            (Sdf.Rational.to_string study.Experiments.with_ca)
            study.Experiments.improvement_percent)
    [
      ("calibrated Microblaze copy loops (x1)", 1);
      ("slower software comm (x4)", 4);
      ("slower software comm (x8)", 8);
      ("handshake-heavy software comm (x16)", 16);
    ];
  let stats = Sdf.Throughput.mcm_stats () in
  Printf.printf "(guarantees identical to section.63; mcm runs %d, fallbacks %d)\n"
    stats.Sdf.Throughput.runs stats.Sdf.Throughput.fallbacks

(* --- section 5.3.1 ------------------------------------------------------------- *)

let section531 () =
  section "Section 5.3.1 - NoC flow-control area overhead";
  let area = Experiments.noc_area () in
  Format.printf
    "router with flow control: %a@.router without:           %a@.overhead: \
     +%d%% slices (paper: ~12%%)@."
    Arch.Area.pp area.Experiments.router_with_flow_control Arch.Area.pp
    area.Experiments.router_without area.Experiments.overhead_percent

(* --- ablations -------------------------------------------------------------------- *)

(* Design-choice ablations (DESIGN.md section 4): how the guarantee reacts
   to the buffer-distribution search depth, the NoC wire allocation, and
   the WCET calibration margin. *)
let ablations () =
  section "Ablations - design choices of the flow";
  let seq = Mjpeg.Streams.synthetic () in
  let app =
    match Experiments.calibrated_mjpeg seq with
    | Ok app -> app
    | Error e -> failwith e
  in
  let guarantee_of options choice =
    match Core.Design_flow.run_auto app ~options choice () with
    | Ok flow -> (
        match flow.Core.Design_flow.guarantee with
        | Some g -> Sdf.Rational.to_string g
        | None -> "-")
    | Error e -> "failed: " ^ Core.Flow_error.to_string e
  in
  Printf.printf "buffer-distribution search depth (FSL):\n";
  List.iter
    (fun rounds ->
      let options =
        { Experiments.flow_options with buffer_growth_rounds = rounds }
      in
      Printf.printf "  growth rounds %d: guarantee %s\n" rounds
        (guarantee_of options (Arch.Template.Use_fsl Arch.Fsl.default)))
    [ 0; 1; 2; 3; 4 ];
  Printf.printf "\nNoC wires per connection (32-wire links):\n";
  List.iter
    (fun wires ->
      let options =
        { Experiments.flow_options with wires_per_connection = wires }
      in
      Printf.printf "  %2d wires (%2d cycles/word): guarantee %s\n" wires
        ((32 + wires - 1) / wires)
        (guarantee_of options (Arch.Template.Use_noc Arch.Noc.default_config)))
    [ 1; 2; 4; 8; 16; 32 ];
  Printf.printf
    "\nWCET calibration margin (worst-case line vs measured, synthetic):\n";
  List.iter
    (fun margin ->
      let result =
        let ( let* ) = Result.bind in
        let* app =
          Mjpeg.Mjpeg_app.calibrated_application
            ~stream:seq.Mjpeg.Streams.seq_stream ~margin_percent:margin ()
        in
        let* flow =
          Result.map_error Core.Flow_error.to_string
            (Core.Design_flow.run_auto app ~options:Experiments.flow_options
               (Arch.Template.Use_fsl Arch.Fsl.default)
               ())
        in
        let* measured =
          Result.map_error Core.Flow_error.to_string
            (Core.Design_flow.measure flow
               ~iterations:(2 * Mjpeg.Streams.mcus seq)
               ())
        in
        Ok
          ( Option.get flow.Core.Design_flow.guarantee,
            Sim.Platform_sim.steady_throughput measured )
      in
      match result with
      | Error e -> Printf.printf "  margin %2d%%: failed (%s)\n" margin e
      | Ok (worst, measured) ->
          Printf.printf
            "  margin %2d%%: worst-case %7.4f, measured %7.4f MCU/MHz/s, \
             bound %s\n"
            margin
            (Core.Report.mcus_per_mhz_second worst)
            (Core.Report.mcus_per_mhz_second measured)
            (if Sdf.Rational.compare measured worst >= 0 then "holds"
             else "VIOLATED"))
    [ 0; 10; 25; 50 ]

(* --- profile ---------------------------------------------------------------- *)

(* the observability layer end to end: the full probe-armed measurement the
   `profile` CLI subcommand exposes, on the synthetic MJPEG FSL platform *)
let profile_section () =
  section "Profile - probe-armed MJPEG measurement (FSL platform)";
  let seq = Mjpeg.Streams.synthetic () in
  let result =
    let ( let* ) = Result.bind in
    let* app = Experiments.calibrated_mjpeg seq in
    let* flow =
      Result.map_error Core.Flow_error.to_string
        (Core.Design_flow.run_auto app ~options:Experiments.flow_options
           (Arch.Template.Use_fsl Arch.Fsl.default)
           ())
    in
    let* p =
      Result.map_error Core.Flow_error.to_string
        (Core.Design_flow.profile flow
           ~iterations:(Mjpeg.Streams.mcus seq)
           ())
    in
    Ok (flow, p)
  in
  match result with
  | Error e -> Printf.printf "failed: %s\n" e
  | Ok (flow, p) ->
      Format.printf "%a@." Core.Report.pp_profile (flow, p);
      Printf.printf
        "\ntrace: %d spans (%d bytes as Chrome JSON, %d bytes as VCD)\n"
        (Sim.Trace.span_count p.Core.Design_flow.pf_trace)
        (String.length (Sim.Trace.to_chrome_json p.Core.Design_flow.pf_trace))
        (String.length (Sim.Trace.to_vcd p.Core.Design_flow.pf_trace))

(* --- conformance sweep ----------------------------------------------------- *)

let conformance_sweep () =
  section "Conformance sweep - bound tightness over random workloads";
  let t0 = Exec.Clock.now () in
  let report =
    Conformance.Engine.run_suite
      ~out_dir:(Filename.concat (Filename.get_temp_dir_name ()) "bench_conf")
      ~base_seed:0 ~count:100 ()
  in
  let dt = Exec.Clock.elapsed_since t0 in
  record ~name:"conformance.sweep" ~value:dt ~iterations:100 ~domains:1 ();
  Printf.printf
    "100 seeded workloads (FSL and NoC alternating): %d failures\n"
    (List.length report.Conformance.Engine.r_failures);
  Printf.printf
    "bound tightness (WCET-simulated / guaranteed): mean %.4f, max %.4f\n"
    report.Conformance.Engine.r_mean_tightness
    report.Conformance.Engine.r_max_tightness;
  Printf.printf "wall time: %.2fs (%.1f ms per workload)\n" dt
    (1000.0 *. dt /. 100.0)

(* --- recovery --------------------------------------------------------------- *)

(* the self-healing loop per single-resource kill on the 4-tile MJPEG NoC
   platform: wall time of diagnose-repair-reverify (time to repair) and the
   degraded/original guarantee ratio, both recorded into BENCH.json *)
let recovery_section () =
  section "Recovery - permanent-fault repair (4-tile MJPEG NoC platform)";
  let seq = Mjpeg.Streams.synthetic () in
  let app =
    match Experiments.calibrated_mjpeg seq with
    | Ok app -> app
    | Error e -> failwith e
  in
  match
    Core.Design_flow.run_auto app ~tiles:4
      (Arch.Template.Use_noc Arch.Noc.default_config)
      ()
  with
  | Error e -> Printf.printf "flow failed: %s\n" (Core.Flow_error.to_string e)
  | Ok flow ->
      let mapping = flow.Core.Design_flow.mapping in
      let iterations = Mjpeg.Streams.mcus seq in
      List.iter
        (fun scenario ->
          let name = Recover.scenario_name scenario in
          let faults = Recover.fault_of_scenario scenario in
          match Sim.Platform_sim.run mapping ~iterations ~faults () with
          | Ok _ -> Printf.printf "  %-14s tolerated (fault never bit)\n" name
          | Error (Sim.Platform_sim.Deadlock d) -> (
              match d.Sim.Diagnosis.dg_classification with
              | Sim.Diagnosis.Resource_failure { rf_resource; _ } -> (
                  let result, wall =
                    Exec.Clock.timed (fun () ->
                        Recover.run mapping ~failed:rf_resource ~iterations ())
                  in
                  match result with
                  | Ok (report, _) ->
                      record
                        ~name:(Printf.sprintf "recover.%s.time_to_repair" name)
                        ~value:wall ~iterations:1 ~domains:1 ();
                      let ratio = Recover.Report.degraded_ratio report in
                      record ~unit:"ratio"
                        ~name:(Printf.sprintf "recover.%s.degraded_ratio" name)
                        ~value:ratio ~iterations:1 ~domains:1 ();
                      Printf.printf
                        "  %-14s repaired in %6.3f s, degraded throughput \
                         ratio %.3f\n"
                        name wall ratio
                  | Error e ->
                      Printf.printf "  %-14s unrepairable: %s\n" name
                        (Recover.error_to_string e))
              | Sim.Diagnosis.Wait_for_cycle ->
                  Printf.printf "  %-14s design deadlock (unexpected)\n" name)
          | Error e ->
              Printf.printf "  %-14s failed: %s\n" name
                (Sim.Platform_sim.error_to_string e))
        (Recover.scenarios mapping)

(* --- parallel scaling ------------------------------------------------------- *)

(* the same DSE sweep on 1, 2, 4 and recommended-domain-count workers:
   the Pareto front must be identical at every -j, only the wall time
   moves. The analysis cache is cleared once up front, so dse.sweep.j1
   measures the cold sweep; the later -j passes run against the cache
   the first pass warmed — exactly what the fixed pool + memoization
   deliver to a real multi-pass session — and must beat it. A final
   sequential re-run records dse.sweep.memoized, the fully-warm sweep
   the acceptance gate compares against the cold one. GC counters ride
   along per run to keep the original diagnosis (cross-domain
   collection pressure) visible in the bench output. *)
let parallel_scaling () =
  section "Parallel scaling - DSE sweep over Exec.Pool domains";
  let seq = Mjpeg.Streams.synthetic () in
  let app =
    match Experiments.calibrated_mjpeg seq with
    | Ok app -> app
    | Error e -> failwith e
  in
  let front_key points =
    List.map
      (fun (p : Core.Dse.point) ->
        ( p.Core.Dse.tile_count,
          Core.Dse.interconnect_label p.Core.Dse.interconnect,
          Option.map Sdf.Rational.to_string p.Core.Dse.guarantee,
          p.Core.Dse.slices ))
      (Core.Dse.pareto points)
  in
  let sweep ?name jobs =
    let gc0 = Gc.quick_stat () in
    let memo0 = Sdf.Throughput.memo_stats () in
    let t0 = Exec.Clock.now () in
    let points, failures =
      Core.Dse.explore app ~options:Experiments.flow_options ~jobs ()
    in
    let dt = Exec.Clock.elapsed_since t0 in
    let gc1 = Gc.quick_stat () in
    let memo = Sdf.Memo.delta ~before:memo0 ~after:(Sdf.Throughput.memo_stats ()) in
    record
      ~name:(Option.value name ~default:(Printf.sprintf "dse.sweep.j%d" jobs))
      ~value:dt
      ~iterations:(List.length points + List.length failures)
      ~domains:jobs ();
    ( jobs,
      dt,
      points,
      Printf.sprintf "minor/major GCs %d/%d, cache %d hit %d miss"
        (gc1.Gc.minor_collections - gc0.Gc.minor_collections)
        (gc1.Gc.major_collections - gc0.Gc.major_collections)
        memo.Sdf.Memo.hits memo.Sdf.Memo.misses )
  in
  (* drop whatever the earlier sections cached so -j 1 is the cold sweep *)
  Sdf.Throughput.memo_clear ();
  let auto = Exec.Pool.parallelism ~jobs:0 () in
  let runs =
    List.map (fun j -> sweep j) (List.sort_uniq compare [ 1; 2; 4; auto ])
  in
  (match runs with
  | [] -> ()
  | (_, base_dt, base_points, _) :: _ ->
      let base_front = front_key base_points in
      List.iter
        (fun (jobs, dt, points, gc) ->
          Printf.printf
            "  -j %-2d  %6.2f s  speedup x%4.2f  front %d point(s), %s  (%s)\n"
            jobs dt
            (if dt > 0. then base_dt /. dt else 0.)
            (List.length (front_key points))
            (if front_key points = base_front then "identical to -j 1"
             else "DIFFERENT FROM -j 1 (determinism violation)")
            gc)
        runs;
      (* the fully-warm sequential sweep: same workload, analysis cache
         populated — the memoization payoff in isolation *)
      let _, warm_dt, warm_points, warm_gc =
        sweep ~name:"dse.sweep.memoized" 1
      in
      Printf.printf "  memoized re-run (-j 1)  %6.2f s  reduction x%4.2f  %s  (%s)\n"
        warm_dt
        (if warm_dt > 0. then base_dt /. warm_dt else 0.)
        (if front_key warm_points = base_front then "front identical"
         else "front DIFFERENT (determinism violation)")
        warm_gc)

(* --- budgeted execution: anytime DSE under a deadline ----------------------- *)

(* interrupt the sweep with a deadline, resume from the checkpoint, and
   check the resumed report is byte-identical to an uninterrupted run —
   the bench records how much of the sweep each phase covered *)
let anytime_section () =
  section "Budgeted execution - anytime DSE (deadline, checkpoint, resume)";
  let seq = Mjpeg.Streams.synthetic () in
  let app =
    match Experiments.calibrated_mjpeg seq with
    | Ok app -> app
    | Error e -> failwith e
  in
  let table a =
    Format.asprintf "%a" Core.Dse.pp_summary_table
      (Core.Dse.pareto_summaries a.Core.Dse.a_summaries)
  in
  let full =
    let t0 = Exec.Clock.now () in
    match
      Core.Dse.explore_anytime app ~options:Experiments.flow_options ()
    with
    | Error e -> failwith e
    | Ok a ->
        record ~name:"dse.anytime.full" ~value:(Exec.Clock.elapsed_since t0)
          ~iterations:(List.length a.Core.Dse.a_summaries) ~domains:1 ();
        a
  in
  let ckpt = Filename.concat (Filename.get_temp_dir_name ()) "bench_dse.ckpt" in
  if Sys.file_exists ckpt then Sys.remove ckpt;
  let partial =
    let t0 = Exec.Clock.now () in
    match
      Core.Dse.explore_anytime app ~options:Experiments.flow_options
        ~deadline:(Exec.Budget.after 0.5) ~checkpoint:ckpt ()
    with
    | Error e -> failwith e
    | Ok a ->
        record ~name:"dse.anytime.partial" ~value:(Exec.Clock.elapsed_since t0)
          ~iterations:(List.length a.Core.Dse.a_summaries) ~domains:1 ();
        a
  in
  (match partial.Core.Dse.a_degradation with
  | Some d ->
      Printf.printf "  0.5 s deadline: %d evaluated, %d skipped\n"
        d.Core.Dse.d_evaluated d.Core.Dse.d_skipped
  | None -> Printf.printf "  0.5 s deadline: sweep finished inside budget\n");
  let resumed =
    let t0 = Exec.Clock.now () in
    match
      Core.Dse.explore_anytime app ~options:Experiments.flow_options
        ~resume:ckpt ()
    with
    | Error e -> failwith e
    | Ok a ->
        record ~name:"dse.anytime.resume" ~value:(Exec.Clock.elapsed_since t0)
          ~iterations:(List.length a.Core.Dse.a_summaries) ~domains:1 ();
        a
  in
  Printf.printf "  resume adopted %d checkpointed point(s); Pareto front %s\n"
    resumed.Core.Dse.a_resumed
    (if table resumed = table full then "identical to uninterrupted run"
     else "DIFFERENT FROM UNINTERRUPTED RUN (determinism violation)")

(* --- Bechamel microbenchmarks --------------------------------------------------- *)

let microbenchmarks () =
  section "Microbenchmarks (Bechamel, one per table/figure hot step)";
  let seq = Mjpeg.Streams.synthetic () in
  let app =
    match Experiments.calibrated_mjpeg seq with
    | Ok app -> app
    | Error e -> failwith e
  in
  let flow =
    match
      Core.Design_flow.run_auto app ~options:Experiments.flow_options
        (Arch.Template.Use_fsl Arch.Fsl.default)
        ()
    with
    | Ok flow -> flow
    | Error e -> failwith (Core.Flow_error.to_string e)
  in
  let mapping = flow.Core.Design_flow.mapping in
  let expanded = mapping.Mapping.Flow_map.expansion.Mapping.Comm_map.graph in
  let exec_options = mapping.Mapping.Flow_map.exec_options in
  let fig2 = figure2_graph () in
  let stream = seq.Mjpeg.Streams.seq_stream in
  let mcus = Mjpeg.Streams.mcus seq in
  let tests =
    [
      Test.make ~name:"fig2.repetition-vector"
        (Staged.stage (fun () -> Sdf.Repetition.vector_exn fig2));
      Test.make ~name:"fig2.self-timed-throughput"
        (Staged.stage (fun () -> Sdf.Throughput.analyse fig2));
      Test.make ~name:"fig3.tile-area"
        (Staged.stage (fun () -> Arch.Area.tile (Arch.Tile.master "t")));
      Test.make ~name:"fig4.comm-model-expansion"
        (Staged.stage (fun () ->
             Mapping.Comm_map.expand
               ~graph:mapping.Mapping.Flow_map.timed_graph
               ~binding:(fun name ->
                 Mapping.Binding.tile_of mapping.Mapping.Flow_map.binding name)
               ~platform:mapping.Mapping.Flow_map.platform ()));
      Test.make ~name:"fig5.vld-decode-one-mcu"
        (Staged.stage (fun () ->
             Mjpeg.Vld.decode_one_mcu stream Mjpeg.Tokens.initial_vld_state));
      Test.make ~name:"fig6.worst-case-analysis"
        (Staged.stage (fun () ->
             Sdf.Throughput.analyse ~options:exec_options expanded));
      Test.make ~name:"fig6.mcm"
        (Staged.stage (fun () ->
             Sdf.Throughput.analyse ~options:exec_options ~method_:`Mcm
               expanded));
      Test.make ~name:"fig6.platform-simulation-one-pass"
        (Staged.stage (fun () -> Sim.Platform_sim.run mapping ~iterations:mcus ()));
      Test.make ~name:"table1.architecture-generation"
        (Staged.stage (fun () ->
             Arch.Template.for_application app
               (Arch.Template.Use_fsl Arch.Fsl.default)));
      Test.make ~name:"table1.mapping"
        (Staged.stage (fun () ->
             Mapping.Flow_map.run app flow.Core.Design_flow.platform
               ~options:Experiments.flow_options ()));
      Test.make ~name:"conformance.generate-workload"
        (Staged.stage (fun () -> Gen.Workload.generate ~seed:7 ()));
      Test.make ~name:"conformance.check-one-seed"
        (Staged.stage (fun () -> Conformance.Engine.check_seed 7));
      Test.make ~name:"table1.project-generation"
        (Staged.stage (fun () -> Mamps.Project.generate mapping));
      Test.make ~name:"table1.synthesis-elaboration"
        (Staged.stage (fun () ->
             let netlist = Mamps.Netlist.of_mapping mapping in
             ( Mamps.Netlist.validate netlist,
               Sim.Platform_sim.run mapping ~iterations:1 () )));
    ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) () in
  let instances = Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  Printf.printf "%-36s %16s\n" "step" "time per run";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analysis = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          let nanos =
            match Analyze.OLS.estimates ols_result with
            | Some (value :: _) -> value
            | Some [] | None -> nan
          in
          let human =
            if Float.is_nan nanos then "n/a"
            else if nanos > 1e9 then Printf.sprintf "%8.2f  s" (nanos /. 1e9)
            else if nanos > 1e6 then Printf.sprintf "%8.2f ms" (nanos /. 1e6)
            else if nanos > 1e3 then Printf.sprintf "%8.2f us" (nanos /. 1e3)
            else Printf.sprintf "%8.0f ns" nanos
          in
          if not (Float.is_nan nanos) then
            record ~name:("micro." ^ name) ~value:(nanos /. 1e9) ~iterations:1
              ~domains:1 ();
          Printf.printf "%-36s %16s\n" name human)
        analysis;
      flush stdout)
    tests

let () =
  timed_section "section.figure2" figure2;
  timed_section "section.figure3" figure3;
  timed_section "section.figure4" figure4;
  timed_section "section.figure5" figure5;
  timed_section "section.figure6a" (fun () ->
      figure6 "a"
        (Arch.Template.Use_fsl Arch.Fsl.default)
        ~paper_note:
          "(paper 6a: worst-case line ~0.60, synthetic ~0.63, test-set ~0.95 \
           MCU/MHz/s; expected-vs-measured <1% on synthetic)");
  timed_section "section.figure6b" (fun () ->
      figure6 "b"
        (Arch.Template.Use_noc Arch.Noc.default_config)
        ~paper_note:
          "(paper 6b: same shape as 6a with slightly lower values on the \
           NoC)");
  timed_section "section.table1" table1;
  (* cold analysis cache on both sides so the two timings compare the
     analysis methods, not memoization luck *)
  Sdf.Throughput.memo_clear ();
  timed_section "section.63" section63;
  Sdf.Throughput.memo_clear ();
  timed_section "section.63.mcm" section63_mcm;
  timed_section "section.531" section531;
  timed_section "section.ablations" ablations;
  timed_section "section.profile" profile_section;
  conformance_sweep ();
  timed_section "section.recovery" recovery_section;
  parallel_scaling ();
  anytime_section ();
  microbenchmarks ();
  line ();
  write_bench_json "BENCH.json";
  print_endline "benchmark harness completed"

(* serve-loadgen: drive the mapping daemon through the three load shapes
   that matter for a service — steady concurrent traffic, an overload
   burst against a small queue, and a kill -9 mid-batch with restart and
   resubmission — and record p50/p99 latency, throughput and rejection
   rate into BENCH.json.

   The generator is also the chaos harness: every scenario carries
   invariant assertions (no job silently lost, no job executed twice,
   bursts answered with 429 instead of a hang), and a violated invariant
   exits 4 so CI fails loudly. Operational trouble (daemon refuses to
   start, poll deadline blown) exits 2; a clean run exits 0. *)

module Json = Jsonkit.Json

let default_daemon =
  match Sys.getenv_opt "MAMPS_FLOW" with
  | Some p -> p
  | None -> Filename.concat "_build" "default/bin/mamps_flow.exe"

exception Operational of string

let opfail fmt = Printf.ksprintf (fun s -> raise (Operational s)) fmt

(* --- tiny HTTP/1.1 client --------------------------------------------------- *)

(* Connection: close framing: write the request, read to EOF, split head
   from body — all the daemon speaks, and all a load generator needs *)
type response = { status : int; body : string }

let http ~port ~meth ~path ?(body = "") () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let req =
        Printf.sprintf
          "%s %s HTTP/1.1\r\nHost: 127.0.0.1\r\nContent-Length: %d\r\n\
           Connection: close\r\n\r\n%s"
          meth path (String.length body) body
      in
      let rec send off =
        if off < String.length req then
          send (off + Unix.write_substring fd req off (String.length req - off))
      in
      send 0;
      let buf = Buffer.create 1024 in
      let chunk = Bytes.create 4096 in
      let rec recv () =
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes buf chunk 0 n;
            recv ()
      in
      recv ();
      let raw = Buffer.contents buf in
      let status =
        try Scanf.sscanf raw "HTTP/1.1 %d" (fun s -> s)
        with Scanf.Scan_failure _ | Failure _ | End_of_file ->
          opfail "unparseable response: %s" (String.sub raw 0 (min 80 (String.length raw)))
      in
      let sep =
        let rec find i =
          if i + 3 >= String.length raw then String.length raw
          else if
            raw.[i] = '\r' && raw.[i + 1] = '\n' && raw.[i + 2] = '\r'
            && raw.[i + 3] = '\n'
          then i + 4
          else find (i + 1)
        in
        find 0
      in
      { status; body = String.sub raw sep (String.length raw - sep) })

(* --- daemon lifecycle ------------------------------------------------------- *)

type daemon = { pid : int; port : int; log : string }

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with Sys_error _ -> ""

(* the daemon prints "listening on http://HOST:PORT (...)" once bound *)
let port_of_log log =
  let s = read_file log in
  let marker = "listening on http://" in
  let mlen = String.length marker in
  let rec find i =
    if i + mlen > String.length s then None
    else if String.sub s i mlen = marker then Some (i + mlen)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start -> (
      match String.index_from_opt s start ':' with
      | None -> None
      | Some colon ->
          let stop = ref (colon + 1) in
          while
            !stop < String.length s
            && s.[!stop] >= '0'
            && s.[!stop] <= '9'
          do
            incr stop
          done;
          int_of_string_opt (String.sub s (colon + 1) (!stop - colon - 1)))

let start_daemon ~binary ~log ~args =
  let out = Unix.openfile log [ O_WRONLY; O_CREAT; O_TRUNC ] 0o644 in
  let argv = Array.of_list (binary :: "serve" :: "--port" :: "0" :: args) in
  let pid =
    Fun.protect
      ~finally:(fun () -> Unix.close out)
      (fun () -> Unix.create_process binary argv Unix.stdin out out)
  in
  let deadline = Unix.gettimeofday () +. 15.0 in
  let rec await () =
    match port_of_log log with
    | Some port -> { pid; port; log }
    | None ->
        if Unix.gettimeofday () > deadline then begin
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          opfail "daemon did not come up; log:\n%s" (read_file log)
        end
        else if fst (Unix.waitpid [ Unix.WNOHANG ] pid) <> 0 then
          opfail "daemon exited during startup; log:\n%s" (read_file log)
        else begin
          Unix.sleepf 0.05;
          await ()
        end
  in
  await ()

let reap pid =
  let deadline = Unix.gettimeofday () +. 15.0 in
  let rec wait () =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
        if Unix.gettimeofday () > deadline then begin
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          ignore (Unix.waitpid [] pid)
        end
        else begin
          Unix.sleepf 0.05;
          wait ()
        end
    | _ -> ()
  in
  wait ()

let stop_daemon d =
  (try Unix.kill d.pid Sys.sigterm with Unix.Unix_error _ -> ());
  reap d.pid

let kill9_daemon d =
  (try Unix.kill d.pid Sys.sigkill with Unix.Unix_error _ -> ());
  reap d.pid

(* --- workload --------------------------------------------------------------- *)

(* a ring of [actors] actors with one initial token: live, deadlock-free,
   and every distinct [base] execution time yields a distinct structural
   digest — so every job in a batch is a distinct piece of work *)
let ring_graph ~name ~actors ~base =
  let b = Buffer.create 512 in
  Printf.bprintf b "<sdfgraph name=%S>\n" name;
  for i = 0 to actors - 1 do
    Printf.bprintf b "  <actor name=\"a%d\" executionTime=\"%d\"/>\n" i
      (base + (13 * i))
  done;
  for i = 0 to actors - 1 do
    Printf.bprintf b
      "  <channel name=\"c%d\" src=\"a%d\" dst=\"a%d\" prodRate=\"1\" \
       consRate=\"1\" initialTokens=\"%d\" tokenSize=\"4\"/>\n"
      i i
      ((i + 1) mod actors)
      (if i = actors - 1 then 1 else 0)
  done;
  Buffer.add_string b "</sdfgraph>\n";
  Buffer.contents b

let run_threads n f =
  let results = Array.make n [] in
  let threads =
    List.init n (fun i -> Thread.create (fun () -> results.(i) <- f i) ())
  in
  List.iter Thread.join threads;
  List.concat (Array.to_list results)

let percentile xs q =
  match xs with
  | [] -> 0.0
  | _ ->
      let a = Array.of_list xs in
      Array.sort compare a;
      let i =
        int_of_float (Float.round (q *. float_of_int (Array.length a - 1)))
      in
      a.(max 0 (min (Array.length a - 1) i))

let counter metrics_body name =
  match Json.of_string metrics_body with
  | Error _ -> 0
  | Ok j -> (
      match Option.bind (Json.member "counters" j) (Json.member name) with
      | Some (Json.Int n) -> n
      | _ -> 0)

let job_statuses ~port =
  let r = http ~port ~meth:"GET" ~path:"/jobs" () in
  match Json.of_string r.body with
  | Error e -> opfail "unparseable /jobs: %s" e
  | Ok j ->
      let jobs =
        Option.value ~default:[]
          (Option.bind (Json.member "jobs" j) Json.to_list_opt)
      in
      List.filter_map
        (fun j ->
          match
            ( Option.bind (Json.member "id" j) Json.to_string_opt,
              Option.bind (Json.member "status" j) Json.to_string_opt )
          with
          | Some id, Some st -> Some (id, st)
          | _ -> None)
        jobs

let terminal st =
  List.mem st [ "completed"; "failed"; "timed_out" ]

let await_all_terminal ~port ~ids ~deadline_s =
  let deadline = Unix.gettimeofday () +. deadline_s in
  let rec poll () =
    let statuses = job_statuses ~port in
    let missing, open_ =
      List.fold_left
        (fun (missing, open_) id ->
          match List.assoc_opt id statuses with
          | None -> (id :: missing, open_)
          | Some st when terminal st -> (missing, open_)
          | Some _ -> (missing, id :: open_))
        ([], []) ids
    in
    if missing = [] && open_ = [] then ()
    else if Unix.gettimeofday () > deadline then
      opfail "jobs still open after %.0f s: %d missing, %d running/queued"
        deadline_s (List.length missing) (List.length open_)
    else begin
      Unix.sleepf 0.1;
      poll ()
    end
  in
  poll ()

(* --- journal forensics ------------------------------------------------------ *)

(* mirror the daemon's replay over the raw journal file: what it will
   see as finished / interrupted / still queued after the kill. Torn
   trailing lines fail to parse and drop out, exactly as in the daemon. *)
type replayed = { r_done : string list; r_intr : string list; r_queued : string list }

let parse_journal path =
  let tbl : (string, [ `Queued | `Started | `Done ]) Hashtbl.t =
    Hashtbl.create 32
  in
  let lines = String.split_on_char '\n' (read_file path) in
  List.iter
    (fun line ->
      let scan fmt f = try Scanf.sscanf line fmt f with _ -> () in
      scan "sub %S %S" (fun id _ ->
          if not (Hashtbl.mem tbl id) then Hashtbl.replace tbl id `Queued);
      scan "run %S" (fun id ->
          if Hashtbl.mem tbl id then Hashtbl.replace tbl id `Started);
      scan "done %S %S" (fun id _ ->
          if Hashtbl.mem tbl id then Hashtbl.replace tbl id `Done);
      scan "fail %S %S" (fun id _ ->
          if Hashtbl.mem tbl id then Hashtbl.replace tbl id `Done);
      scan "timeout %S %S" (fun id _ ->
          if Hashtbl.mem tbl id then Hashtbl.replace tbl id `Done);
      scan "requeue %S" (fun id ->
          if Hashtbl.mem tbl id then Hashtbl.replace tbl id `Queued))
    lines;
  Hashtbl.fold
    (fun id state acc ->
      match state with
      | `Done -> { acc with r_done = id :: acc.r_done }
      | `Started -> { acc with r_intr = id :: acc.r_intr }
      | `Queued -> { acc with r_queued = id :: acc.r_queued })
    tbl
    { r_done = []; r_intr = []; r_queued = [] }

(* --- scenarios -------------------------------------------------------------- *)

let gates : string list ref = ref []
let gate name ok = if not ok then gates := name :: !gates

type bench_entry = { e_name : string; e_value : float; e_unit : string }

let entries : bench_entry list ref = ref []

let record e_name e_value e_unit = entries := { e_name; e_value; e_unit } :: !entries

let scenario_steady ~binary ~dir ~jobs ~clients =
  Printf.printf "steady: %d flow jobs over %d client(s)\n%!" jobs clients;
  let d =
    start_daemon ~binary
      ~log:(Filename.concat dir "steady.log")
      ~args:[ "--workers"; "2"; "--queue"; "64"; "--no-journal" ]
  in
  Fun.protect
    ~finally:(fun () -> stop_daemon d)
    (fun () ->
      let started = Unix.gettimeofday () in
      let results =
        run_threads clients (fun client ->
            let per = jobs / clients in
            List.init per (fun k ->
                let idx = (client * per) + k in
                let body =
                  ring_graph
                    ~name:(Printf.sprintf "steady%d" idx)
                    ~actors:4 ~base:(60 + (idx * 17))
                in
                let t0 = Unix.gettimeofday () in
                let r =
                  http ~port:d.port ~meth:"POST"
                    ~path:"/jobs?mode=flow&tiles=2&wait=1" ~body ()
                in
                (r.status, (Unix.gettimeofday () -. t0) *. 1000.0)))
      in
      let wall = Unix.gettimeofday () -. started in
      let ok = List.for_all (fun (s, _) -> s = 200) results in
      gate "steady: every wait=1 job answered 200" ok;
      let lat = List.map snd results in
      let p50 = percentile lat 0.50 and p99 = percentile lat 0.99 in
      let thr = float_of_int (List.length results) /. wall in
      Printf.printf
        "steady: p50 %.1f ms, p99 %.1f ms, %.1f jobs/s over %.2f s\n%!" p50
        p99 thr wall;
      record "serve.steady.latency_p50" p50 "milliseconds";
      record "serve.steady.latency_p99" p99 "milliseconds";
      record "serve.steady.throughput" thr "jobs/second")

let scenario_burst ~binary ~dir ~jobs ~clients =
  Printf.printf "burst: %d dse jobs against a queue of 4\n%!" jobs;
  let d =
    start_daemon ~binary
      ~log:(Filename.concat dir "burst.log")
      ~args:[ "--workers"; "1"; "--queue"; "4"; "--no-journal" ]
  in
  Fun.protect
    ~finally:(fun () -> stop_daemon d)
    (fun () ->
      let results =
        run_threads clients (fun client ->
            let per = jobs / clients in
            List.init per (fun k ->
                let idx = (client * per) + k in
                let body =
                  ring_graph
                    ~name:(Printf.sprintf "burst%d" idx)
                    ~actors:6 ~base:(70 + (idx * 11))
                in
                let r =
                  http ~port:d.port ~meth:"POST"
                    ~path:"/jobs?mode=dse&tiles=4" ~body ()
                in
                (r.status, idx)))
      in
      let accepted = List.filter (fun (s, _) -> s = 202) results in
      let rejected = List.filter (fun (s, _) -> s = 429) results in
      let other =
        List.filter (fun (s, _) -> s <> 202 && s <> 429) results
      in
      (* the not-ready signal while the queue is saturated *)
      let readyz = http ~port:d.port ~meth:"GET" ~path:"/readyz" () in
      gate "burst: a full queue answers 429, nothing else"
        (other = [] && rejected <> []);
      Printf.printf "burst: %d accepted, %d rejected (429), readyz %d\n%!"
        (List.length accepted) (List.length rejected) readyz.status;
      (* the accepted backlog must drain — an overloaded daemon that
         hangs is exactly the failure this scenario exists to catch *)
      let ids =
        List.map (fun (id, _) -> id) (job_statuses ~port:d.port)
      in
      await_all_terminal ~port:d.port ~ids ~deadline_s:120.0;
      let healthz = http ~port:d.port ~meth:"GET" ~path:"/healthz" () in
      gate "burst: healthz still 200 after the burst" (healthz.status = 200);
      record "serve.burst.rejection_rate"
        (float_of_int (List.length rejected)
        /. float_of_int (max 1 (List.length results)))
        "ratio")

let scenario_crash ~binary ~dir ~jobs =
  Printf.printf "crash: %d dse jobs, kill -9 mid-batch, restart, resubmit\n%!"
    jobs;
  let journal = Filename.concat dir "journal.log" in
  let args =
    [ "--workers"; "1"; "--queue"; "64"; "--journal"; journal ]
  in
  let submit port idx =
    (* heavy enough (8-point sweep, state-space analysis) that the kill
       below lands with jobs still queued and one mid-flight *)
    let body =
      ring_graph
        ~name:(Printf.sprintf "crash%d" idx)
        ~actors:8 ~base:(90 + (idx * 19))
    in
    http ~port ~meth:"POST"
      ~path:"/jobs?mode=dse&tiles=8&analysis=state-space" ~body ()
  in
  let d1 =
    start_daemon ~binary ~log:(Filename.concat dir "crash1.log") ~args
  in
  let submitted =
    try
      List.init jobs (fun idx ->
          let r = submit d1.port idx in
          if r.status <> 202 then
            opfail "crash: submission %d answered %d" idx r.status;
          match
            Result.bind (Json.of_string r.body) (fun j ->
                match Option.bind (Json.member "id" j) Json.to_string_opt with
                | Some id -> Ok id
                | None -> Error "no id")
          with
          | Ok id -> id
          | Error e -> opfail "crash: submission %d: %s" idx e)
    with e ->
      kill9_daemon d1;
      raise e
  in
  (* pull the plug right behind the last submission: the single worker
     needs far longer than that to drain the backlog, so the journal is
     caught with a mix of finished, mid-flight and queued jobs *)
  Unix.sleepf 0.05;
  kill9_daemon d1;
  let replay = parse_journal journal in
  Printf.printf
    "crash: killed with %d finished, %d mid-flight, %d queued (journal)\n%!"
    (List.length replay.r_done)
    (List.length replay.r_intr)
    (List.length replay.r_queued);
  gate "crash: the kill landed mid-batch"
    (List.length replay.r_done < jobs);
  let journaled =
    List.length replay.r_done + List.length replay.r_intr
    + List.length replay.r_queued
  in
  let d2 =
    start_daemon ~binary ~log:(Filename.concat dir "crash2.log") ~args
  in
  Fun.protect
    ~finally:(fun () -> stop_daemon d2)
    (fun () ->
      let healthz = http ~port:d2.port ~meth:"GET" ~path:"/healthz" () in
      gate "crash: healthz 200 after restart" (healthz.status = 200);
      (* idempotent resubmission of the whole batch: finished jobs answer
         from the stored outcome, interrupted ones requeue, lost
         submissions (torn journal tail) are accepted as new *)
      List.iteri
        (fun idx _ ->
          let r = submit d2.port idx in
          if r.status <> 200 && r.status <> 202 then
            opfail "crash: resubmission %d answered %d" idx r.status)
        submitted;
      await_all_terminal ~port:d2.port ~ids:submitted ~deadline_s:120.0;
      let statuses = job_statuses ~port:d2.port in
      let lost =
        List.filter (fun id -> not (List.mem_assoc id statuses)) submitted
      in
      gate "crash: no job silently lost" (lost = []);
      (* exactly-once execution: run 2 executes the replayed queue, the
         requeued interrupted jobs and any submission the torn journal
         lost — and never a job whose outcome the journal already holds *)
      let metrics = http ~port:d2.port ~meth:"GET" ~path:"/metrics" () in
      let executed = counter metrics.body "serve.jobs.executed" in
      let expected =
        List.length replay.r_queued + List.length replay.r_intr
        + (jobs - journaled)
      in
      if executed <> expected then
        Printf.printf "crash: executed %d, expected %d\n%!" executed expected;
      gate "crash: completed jobs are not re-executed" (executed = expected);
      record "serve.crash.interrupted"
        (float_of_int (List.length replay.r_intr))
        "count";
      record "serve.crash.reexecuted" (float_of_int executed) "count";
      Printf.printf "crash: all %d jobs terminal after restart+resubmit\n%!"
        (List.length submitted))

(* --- BENCH.json merge ------------------------------------------------------- *)

(* the flow benchmarks own BENCH.json; the load generator merges its
   serve.* entries into the same schema-v2 file, replacing only stale
   serve.* lines so the two writers never fight *)
let merge_bench path =
  let keep =
    match Json.of_string (read_file path) with
    | Error _ -> []
    | Ok j -> (
        match Option.bind (Json.member "entries" j) Json.to_list_opt with
        | None -> []
        | Some es ->
            List.filter
              (fun e ->
                match
                  Option.bind (Json.member "name" e) Json.to_string_opt
                with
                | Some n ->
                    not
                      (String.length n >= 6 && String.sub n 0 6 = "serve.")
                | None -> false)
              es)
  in
  let ours =
    List.rev_map
      (fun e ->
        Json.Obj
          [
            ("name", Json.String e.e_name);
            ("value", Json.Float e.e_value);
            ("unit", Json.String e.e_unit);
            ("iterations", Json.Int 1);
            ("domains", Json.Int 1);
          ])
      !entries
  in
  let all = keep @ ours in
  let n = List.length all in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "{\n  \"schema_version\": 2,\n  \"entries\": [\n";
      List.iteri
        (fun i e ->
          Printf.fprintf oc "    %s%s\n" (Json.to_string e)
            (if i = n - 1 then "" else ","))
        all;
      output_string oc "  ]\n}\n");
  Printf.printf "merged %d serve entries into %s\n%!" (List.length ours) path

(* --- main ------------------------------------------------------------------- *)

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

let () =
  let binary = ref default_daemon in
  let out = ref "BENCH.json" in
  let steady_jobs = ref 12 in
  let burst_jobs = ref 32 in
  let crash_jobs = ref 12 in
  let spec =
    [
      ("--daemon", Arg.Set_string binary, "PATH mamps_flow binary");
      ("--out", Arg.Set_string out, "FILE BENCH.json to merge into");
      ("--steady", Arg.Set_int steady_jobs, "N steady-scenario jobs");
      ("--burst", Arg.Set_int burst_jobs, "N burst-scenario jobs");
      ("--crash", Arg.Set_int crash_jobs, "N crash-scenario jobs");
    ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "serve_loadgen [options]";
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  if not (Sys.file_exists !binary) then begin
    Printf.eprintf "daemon binary not found: %s (build it, or --daemon)\n"
      !binary;
    exit 2
  end;
  let dir = Printf.sprintf "_loadgen.%d" (Unix.getpid ()) in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error _ -> ());
  match
    scenario_steady ~binary:!binary ~dir ~jobs:!steady_jobs ~clients:4;
    scenario_burst ~binary:!binary ~dir ~jobs:!burst_jobs ~clients:8;
    scenario_crash ~binary:!binary ~dir ~jobs:!crash_jobs
  with
  | () ->
      merge_bench !out;
      if !gates = [] then begin
        rm_rf dir;
        print_string "all invariants held\n";
        exit 0
      end
      else begin
        List.iter (Printf.eprintf "INVARIANT VIOLATED: %s\n") (List.rev !gates);
        Printf.eprintf "daemon logs kept under %s\n" dir;
        exit 4
      end
  | exception Operational msg ->
      Printf.eprintf "loadgen: %s\ndaemon logs kept under %s\n" msg dir;
      exit 2

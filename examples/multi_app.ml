(* Multiple applications on one platform: MAMPS generates projects "based
   on a SDF description of one or more applications" (paper section 1).
   The MJPEG decoder shares the five tiles with a small audio filter whose
   actors ride along in the static orders of the CC and Raster tiles, and
   the two tiles that need the UART share it through the predictable TDM
   arbiter (the paper's future-work extension). *)

module Application = Appmodel.Application
module Actor_impl = Appmodel.Actor_impl
module Metrics = Appmodel.Metrics
module Token = Appmodel.Token

(* A three-actor audio chain: a stateful sample source, a 4-tap FIR and a
   sink accumulating a checksum. One iteration filters one sample. *)
let audio_app () =
  let source =
    Actor_impl.make ~name:"audio_source"
      ~metrics:(Metrics.make ~wcet:400 ~instruction_memory:1024 ~data_memory:512)
      ~explicit_inputs:[ "srcState" ]
      ~explicit_outputs:[ "srcState"; "samples" ]
      (fun bundle ->
        match Actor_impl.find bundle "srcState" with
        | [| s |] ->
            let t = (Token.to_ints s).(0) in
            (* a deterministic sawtooth-ish test signal *)
            let sample = ((t * 37) mod 256) - 128 in
            [
              ("srcState", [| Token.of_ints [| t + 1 |] |]);
              ("samples", [| Token.of_ints [| sample |] |]);
            ]
        | _ -> failwith "audio source: bad state")
  in
  let fir =
    Actor_impl.make ~name:"audio_fir"
      ~metrics:(Metrics.make ~wcet:900 ~instruction_memory:2048 ~data_memory:1024)
      ~explicit_inputs:[ "samples"; "firState" ]
      ~explicit_outputs:[ "firState"; "filtered" ]
      (fun bundle ->
        match
          (Actor_impl.find bundle "samples", Actor_impl.find bundle "firState")
        with
        | [| s |], [| state |] ->
            let x = (Token.to_ints s).(0) in
            let taps = Token.to_ints state in
            let y =
              ((4 * x) + (3 * taps.(0)) + (2 * taps.(1)) + taps.(2)) / 10
            in
            [
              ("firState", [| Token.of_ints [| x; taps.(0); taps.(1) |] |]);
              ("filtered", [| Token.of_ints [| y |] |]);
            ]
        | _ -> failwith "fir: bad inputs")
  in
  let sink =
    Actor_impl.make ~name:"audio_sink"
      ~metrics:(Metrics.make ~wcet:300 ~instruction_memory:512 ~data_memory:512)
      ~explicit_inputs:[ "filtered"; "sinkState" ]
      ~explicit_outputs:[ "sinkState" ]
      (fun bundle ->
        match
          ( Actor_impl.find bundle "filtered",
            Actor_impl.find bundle "sinkState" )
        with
        | [| y |], [| acc |] ->
            let sum =
              ((Token.to_ints acc).(0) + abs (Token.to_ints y).(0)) land 0xFFFF
            in
            [ ("sinkState", [| Token.of_ints [| sum |] |]) ]
        | _ -> failwith "sink: bad inputs")
  in
  Application.make ~name:"audio"
    ~actors:
      [
        { Application.a_name = "Source"; a_implementations = [ source ] };
        { Application.a_name = "Fir"; a_implementations = [ fir ] };
        { Application.a_name = "Sink"; a_implementations = [ sink ] };
      ]
    ~channels:
      [
        Application.channel ~name:"srcState" ~source:"Source" ~production:1
          ~target:"Source" ~consumption:1 ~initial_tokens:1
          ~initial_values:[ Token.of_ints [| 0 |] ]
          ();
        Application.channel ~name:"samples" ~source:"Source" ~production:1
          ~target:"Fir" ~consumption:1 ();
        Application.channel ~name:"firState" ~source:"Fir" ~production:1
          ~target:"Fir" ~consumption:1 ~initial_tokens:1 ~token_bytes:12
          ~initial_values:[ Token.of_ints [| 0; 0; 0 |] ]
          ();
        Application.channel ~name:"filtered" ~source:"Fir" ~production:1
          ~target:"Sink" ~consumption:1 ();
        Application.channel ~name:"sinkState" ~source:"Sink" ~production:1
          ~target:"Sink" ~consumption:1 ~initial_tokens:1
          ~initial_values:[ Token.of_ints [| 0 |] ]
          ();
      ]
    ()

let shared_uart_platform () =
  let ( let* ) = Result.bind in
  let* arbiter = Arch.Arbiter.make ~slot_cycles:16 ~clients:[ "tile0"; "tile4" ] in
  let with_uart tile =
    { tile with Arch.Tile.peripherals = [ Arch.Component.Uart ] }
  in
  Arch.Platform.make ~name:"mjpeg_audio_platform"
    ~tiles:
      [
        Arch.Tile.master ~peripherals:[ Arch.Component.Uart; Arch.Component.Timer ] "tile0";
        Arch.Tile.slave "tile1";
        Arch.Tile.slave "tile2";
        Arch.Tile.slave "tile3";
        with_uart (Arch.Tile.slave "tile4");
      ]
    ~arbiters:[ (Arch.Component.Uart, arbiter) ]
    (Arch.Platform.Point_to_point Arch.Fsl.default)

let () =
  let seq = Mjpeg.Streams.synthetic () in
  let result =
    let ( let* ) = Result.bind in
    let* mjpeg = Experiments.calibrated_mjpeg seq in
    let* audio = audio_app () in
    let* platform = shared_uart_platform () in
    let fixed =
      List.map
        (fun (actor, tile) -> (Application.qualified ~app:"mjpeg" actor, tile))
        Experiments.five_tile_binding
      @ [
          (Application.qualified ~app:"audio" "Source", 3);
          (Application.qualified ~app:"audio" "Fir", 3);
          (Application.qualified ~app:"audio" "Sink", 4);
        ]
    in
    let options = { Mapping.Flow_map.default_options with fixed } in
    let* multi =
      Result.map_error Core.Flow_error.to_string
        (Core.Design_flow.run_many [ mjpeg; audio ] platform ~options ())
    in
    let* measured =
      Result.map_error Core.Flow_error.to_string
        (Core.Design_flow.measure multi.Core.Design_flow.combined
           ~iterations:(2 * Mjpeg.Streams.mcus seq)
           ())
    in
    Ok (multi, measured, platform)
  in
  match result with
  | Error msg ->
      Printf.eprintf "multi-application flow failed: %s\n" msg;
      exit 1
  | Ok (multi, measured, platform) ->
      Format.printf "%a@.@." Mapping.Flow_map.pp_summary
        multi.Core.Design_flow.combined.Core.Design_flow.mapping;
      Format.printf "per-application guarantees:@.";
      List.iter
        (fun (app, rate) ->
          match rate with
          | Some r ->
              Format.printf "  %-8s %s iterations/cycle (%.4f per MHz per s)@."
                app (Sdf.Rational.to_string r)
                (Core.Report.mcus_per_mhz_second r)
          | None -> Format.printf "  %-8s no guarantee@." app)
        multi.Core.Design_flow.per_application;
      Format.printf "@.measured (combined, %d MJPEG MCUs): %.4f per MHz per s@."
        measured.Sim.Platform_sim.iterations
        (Core.Report.mcus_per_mhz_second
           (Sim.Platform_sim.steady_throughput measured));
      (match
         Arch.Platform.peripheral_access_bound platform ~tile:"tile4"
           ~peripheral:Arch.Component.Uart ~request_cycles:24
       with
      | Some bound ->
          Format.printf
            "@.shared UART: a 24-cycle access from tile4 completes within %d \
             cycles (predictable TDM arbiter)@."
            bound
      | None -> ());
      if
        List.for_all
          (fun (_, r) -> r <> None)
          multi.Core.Design_flow.per_application
      then Format.printf "@.both applications carry a throughput guarantee@."
      else exit 1

(* Quickstart: build the paper's Figure 2 example graph, run the standard
   analyses, and map it onto a generated two-tile platform. *)

let () =
  (* --- 1. describe the application graph ------------------------------ *)
  let g = Sdf.Graph.empty "figure2" in
  let g, a = Sdf.Graph.add_actor g ~name:"A" ~execution_time:10 in
  let g, b = Sdf.Graph.add_actor g ~name:"B" ~execution_time:4 in
  let g, c = Sdf.Graph.add_actor g ~name:"C" ~execution_time:6 in
  let g, _ =
    Sdf.Graph.add_channel g ~name:"a2b" ~source:a ~production_rate:2 ~target:b
      ~consumption_rate:1 ()
  in
  let g, _ =
    Sdf.Graph.add_channel g ~name:"a2c" ~source:a ~production_rate:1 ~target:c
      ~consumption_rate:1 ()
  in
  let g, _ =
    Sdf.Graph.add_channel g ~name:"b2c" ~source:b ~production_rate:1 ~target:c
      ~consumption_rate:2 ()
  in
  (* actor A keeps state: modelled explicitly by a self-edge (Listing 1) *)
  let g, _ =
    Sdf.Graph.add_channel g ~name:"aState" ~source:a ~production_rate:1
      ~target:a ~consumption_rate:1 ~initial_tokens:1 ()
  in
  Format.printf "%a@.@." Sdf.Graph.pp g;

  (* --- 2. analyse ------------------------------------------------------ *)
  let q = Sdf.Repetition.vector_exn g in
  Format.printf "repetition vector: A=%d B=%d C=%d@." q.(a) q.(b) q.(c);
  Format.printf "deadlock free: %b@." (Sdf.Analysis.is_deadlock_free g);
  Format.printf "self-timed throughput: %a@.@." Sdf.Throughput.pp_result
    (Sdf.Throughput.analyse g);

  (* --- 3. wrap it into an application model with dummy actor code ----- *)
  let impl name wcet =
    Appmodel.Actor_impl.make ~name:(name ^ "_impl")
      ~metrics:
        (Appmodel.Metrics.make ~wcet ~instruction_memory:2048 ~data_memory:1024)
      (fun _ -> [])
  in
  let app =
    match
      Appmodel.Application.make ~name:"figure2"
        ~actors:
          [
            { a_name = "A"; a_implementations = [ impl "A" 10 ] };
            { a_name = "B"; a_implementations = [ impl "B" 4 ] };
            { a_name = "C"; a_implementations = [ impl "C" 6 ] };
          ]
        ~channels:
          [
            Appmodel.Application.channel ~name:"a2b" ~source:"A" ~production:2
              ~target:"B" ~consumption:1 ();
            Appmodel.Application.channel ~name:"a2c" ~source:"A" ~production:1
              ~target:"C" ~consumption:1 ();
            Appmodel.Application.channel ~name:"b2c" ~source:"B" ~production:1
              ~target:"C" ~consumption:2 ();
            Appmodel.Application.channel ~name:"aState" ~source:"A"
              ~production:1 ~target:"A" ~consumption:1 ~initial_tokens:1 ();
          ]
        ()
    with
    | Ok app -> app
    | Error msg -> failwith msg
  in

  (* --- 4. run the automated flow against a 2-tile FSL platform -------- *)
  match
    Core.Design_flow.run_auto app ~tiles:2
      (Arch.Template.Use_fsl Arch.Fsl.default)
      ()
  with
  | Error e -> failwith (Core.Flow_error.to_string e)
  | Ok flow ->
      Format.printf "%a@.@." Mapping.Flow_map.pp_summary
        flow.Core.Design_flow.mapping;
      Format.printf "automated steps (Table 1):@.%a@." Core.Design_flow.pp_times
        flow.Core.Design_flow.times;
      Format.printf "@.generated project files:@.";
      List.iter
        (fun (path, contents) ->
          Format.printf "  %-24s %5d bytes@." path (String.length contents))
        flow.Core.Design_flow.project.Mamps.Project.files

(* Heterogeneous mapping: the application model carries two IDCT
   implementations (Microblaze software and a dedicated hardware core),
   and the flow picks the right one per tile — "the automated selection of
   the correct implementation when heterogeneous systems are designed"
   (paper, conclusions). The IDCT moves to Figure 3's Tile-4 variant: an
   IP block behind a plain network interface. *)

let platform_with_ip () =
  Arch.Platform.make ~name:"mjpeg_hetero"
    ~tiles:
      [
        Arch.Tile.master "tile0";
        Arch.Tile.slave "tile1";
        Arch.Tile.ip_block ~name:"tile2" ~ip:"idct_core";
        Arch.Tile.slave "tile3";
        Arch.Tile.slave "tile4";
      ]
    (Arch.Platform.Point_to_point Arch.Fsl.default)

let run label app platform =
  let ( let* ) = Result.bind in
  let* flow =
    Result.map_error Core.Flow_error.to_string
      (Core.Design_flow.run app platform
         ~options:
           {
             Mapping.Flow_map.default_options with
             fixed = Experiments.five_tile_binding;
           }
         ())
  in
  let seq = Mjpeg.Streams.synthetic () in
  let* measured =
    Result.map_error Core.Flow_error.to_string
      (Core.Design_flow.measure flow ~iterations:(2 * Mjpeg.Streams.mcus seq) ())
  in
  Format.printf "%-22s guarantee %-10s measured %.4f MCU/MHz/s@." label
    (match flow.Core.Design_flow.guarantee with
    | Some g -> Sdf.Rational.to_string g
    | None -> "-")
    (Core.Report.mcus_per_mhz_second (Sim.Platform_sim.steady_throughput measured));
  Ok flow

let () =
  let seq = Mjpeg.Streams.synthetic () in
  let stream = seq.Mjpeg.Streams.seq_stream in
  let result =
    let ( let* ) = Result.bind in
    let* software = Mjpeg.Mjpeg_app.application ~stream () in
    let* hetero = Mjpeg.Mjpeg_app.heterogeneous_application ~stream () in
    let* soft_platform =
      Arch.Template.generate ~name:"mjpeg_soft" ~tile_count:5
        (Arch.Template.Use_fsl Arch.Fsl.default)
    in
    let* ip_platform = platform_with_ip () in
    Format.printf "MJPEG with a hardware IDCT core (structural WCETs)@.@.";
    let* _ = run "all-software (5 PEs)" software soft_platform in
    let* hetero_flow = run "hardware IDCT tile" hetero ip_platform in
    Ok hetero_flow
  in
  match result with
  | Error msg ->
      Printf.eprintf "heterogeneous flow failed: %s\n" msg;
      exit 1
  | Ok flow ->
      let impl =
        Mapping.Binding.implementation flow.Core.Design_flow.application
          flow.Core.Design_flow.platform
          flow.Core.Design_flow.mapping.Mapping.Flow_map.binding "IDCT"
      in
      Format.printf
        "@.the flow selected implementation %S (processor type %S) for the \
         IDCT@."
        impl.Appmodel.Actor_impl.impl_name
        impl.Appmodel.Actor_impl.processor_type
